//! The decode simulation harness: drives any [`Policy`] over a
//! [`DecodeWorkload`], computing retrieval and fidelity metrics.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use unicaim_attention::kernels::{self, RowView};
use unicaim_attention::metrics::{cosine_similarity, relative_l2_error, set_f1, Mean};
use unicaim_attention::workloads::DecodeWorkload;
use unicaim_attention::{softmax_in_place, KvStore, Matrix};

use crate::policy::Policy;

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Physical KV-cache capacity in tokens (slots).
    pub capacity: usize,
    /// Dynamic top-k width passed to the policy each step.
    pub k: usize,
    /// Prefill keep budget handed to the policy (usually `capacity` minus
    /// the reserved decode slots).
    pub prefill_budget: usize,
}

impl SimConfig {
    /// A config with `capacity` slots and top-`k` selection; the prefill
    /// budget defaults to `capacity`.
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> Self {
        Self {
            capacity,
            k,
            prefill_budget: capacity,
        }
    }

    /// Sets the prefill budget (builder-style).
    #[must_use]
    pub fn with_prefill_budget(mut self, budget: usize) -> Self {
        self.prefill_budget = budget;
        self
    }
}

/// Capacity for a relative cache-size sweep: `ratio` of the workload's total
/// token count, floored at 8 tokens.
#[must_use]
pub fn ratio_capacity(workload: &DecodeWorkload, ratio: f64) -> usize {
    ((workload.total_tokens() as f64 * ratio).round() as usize).max(8)
}

/// Aggregate result of one simulated decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy display name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Mean cosine similarity between pruned and full attention outputs.
    pub output_cosine: f64,
    /// Mean relative L2 error of the pruned attention output.
    pub output_rel_error: f64,
    /// Mean recall of ground-truth salient tokens among *selected* tokens at
    /// answer steps.
    pub salient_recall: f64,
    /// Mean F1 of selected-vs-salient restricted to the salient universe.
    pub salient_f1: f64,
    /// Fraction of answer steps at which *every* salient token was selected.
    pub retrieval_accuracy: f64,
    /// Mean number of tokens selected per step.
    pub mean_selected: f64,
    /// Mean resident tokens across steps.
    pub mean_resident: f64,
    /// Number of decode steps simulated.
    pub steps: usize,
    /// Number of *answer* steps (steps with a non-empty salient set) that the
    /// salience means aggregate over. Distinguishes "recall was zero" from
    /// "the workload had nothing to retrieve": when `answer_steps == 0`,
    /// `salient_recall`, `salient_f1`, and `retrieval_accuracy` are all
    /// vacuously `0.0` and should not be compared across policies.
    pub answer_steps: usize,
}

/// Runs `policy` over `workload` with the given configuration.
///
/// The harness owns the KV store and all attention math; the policy only
/// decides what to keep, select, and evict (see [`Policy`]). The decode-step
/// order mirrors the UniCAIM hardware flow: score residents → select →
/// exact attention over the selection → observe weights over all residents
/// → insert the newly generated token (evicting on overflow).
///
/// # Panics
///
/// Panics if the policy's prefill keep set exceeds the cache capacity or if
/// it evicts a token that is not resident.
#[must_use]
pub fn simulate_decode(
    workload: &DecodeWorkload,
    policy: &mut dyn Policy,
    config: &SimConfig,
) -> SimResult {
    let mut state = DecodeState::prefill(workload, policy, config);
    for step in 0..state.steps() {
        state.step(policy, step);
    }
    state.finish(policy)
}

/// Per-sequence decode state: the KV store, the exact-attention reference,
/// and the metric accumulators of one sequence mid-flight.
///
/// This is the shared per-step core behind both [`simulate_decode`] and the
/// batched driver ([`crate::simulate_batch`]): a batch of size 1 reproduces
/// `simulate_decode` exactly because both run this code path step for step.
pub(crate) struct DecodeState<'w> {
    workload: &'w DecodeWorkload,
    config: SimConfig,
    store: KvStore,
    reference: Vec<Vec<f32>>,
    salient_universe: BTreeSet<usize>,
    /// `1/√dim`, the attention score scale.
    inv_sqrt_dim: f32,
    // Reused per-step scratch buffers: the steady-state decode step is
    // allocation-free (see the `kernels` module docs).
    scored: Vec<(usize, f32)>,
    sel_slots: Vec<usize>,
    weights: Vec<f32>,
    output: Vec<f32>,
    observed: Vec<(usize, f32)>,
    resident_scratch: Vec<usize>,
    cos: Mean,
    rel: Mean,
    recall: Mean,
    f1: Mean,
    hits: Mean,
    n_selected: Mean,
    n_resident: Mean,
}

impl<'w> DecodeState<'w> {
    /// Runs the prefill stage: causal attention matrix, the policy's static
    /// keep decision, and the initial KV-store population.
    ///
    /// # Panics
    ///
    /// Panics if the policy's prefill keep set exceeds the cache capacity.
    pub(crate) fn prefill(
        workload: &'w DecodeWorkload,
        policy: &mut dyn Policy,
        config: &SimConfig,
    ) -> Self {
        let dim = workload.dim;
        let prefill_len = workload.prefill_keys.len();
        let attn = prefill_attention_matrix(workload);
        let keep = policy.prefill_keep(&attn, config.prefill_budget.min(prefill_len));
        let mut store = KvStore::new(config.capacity, dim);
        for &t in &keep {
            store
                .append_parts(t, &workload.prefill_keys[t], &workload.prefill_values[t])
                .expect("prefill keep set must fit the cache capacity");
        }
        let salient_universe: BTreeSet<usize> = workload
            .salient_at
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        Self {
            workload,
            config: *config,
            store,
            reference: workload.full_attention_reference(),
            salient_universe,
            inv_sqrt_dim: 1.0 / (dim as f32).sqrt(),
            scored: Vec::with_capacity(config.capacity),
            sel_slots: Vec::with_capacity(config.capacity),
            weights: Vec::with_capacity(config.capacity),
            output: vec![0.0; dim],
            observed: Vec::with_capacity(config.capacity),
            resident_scratch: Vec::with_capacity(config.capacity),
            cos: Mean::new(),
            rel: Mean::new(),
            recall: Mean::new(),
            f1: Mean::new(),
            hits: Mean::new(),
            n_selected: Mean::new(),
            n_resident: Mean::new(),
        }
    }

    /// Total number of decode steps this sequence has.
    pub(crate) fn steps(&self) -> usize {
        self.workload.decode_queries.len()
    }

    /// Number of currently resident tokens (occupied KV slots).
    pub(crate) fn resident(&self) -> usize {
        self.store.len()
    }

    /// Runs one decode step: score residents → select → exact attention →
    /// observe → insert the new token (evicting on overflow).
    ///
    /// # Panics
    ///
    /// Panics if the policy selects a non-resident token or evicts a token
    /// that is not resident.
    pub(crate) fn step(&mut self, policy: &mut dyn Policy, step: usize) {
        let workload = self.workload;
        let prefill_len = workload.prefill_keys.len();
        let query = &workload.decode_queries[step];

        // 1. Score every resident token: one strided pass over the key
        //    arena, already in the ascending-token order the contract
        //    guarantees (no per-step sort).
        self.scored.clear();
        let keys = self.store.keys_view();
        for (token, slot) in self.store.iter_tokens() {
            self.scored.push((
                token,
                kernels::dot(query, keys.row(slot)) * self.inv_sqrt_dim,
            ));
        }
        self.n_resident.push(self.scored.len() as f64);

        // 2. Dynamic selection.
        let decision = policy.select(step, &self.scored, self.config.k);
        self.n_selected.push(decision.selected.len() as f64);

        // 3. Exact attention over the selection: gather slots, then the
        //    fused score→softmax→weighted-sum kernel over the arenas.
        gather_selected_slots(&self.store, &decision.selected, &mut self.sel_slots);
        kernels::attend_gather(
            query,
            self.store.keys_view(),
            self.store.values_view(),
            &self.sel_slots,
            self.inv_sqrt_dim,
            &mut self.weights,
            &mut self.output,
        );
        self.cos
            .push(cosine_similarity(&self.output, &self.reference[step]));
        self.rel
            .push(relative_l2_error(&self.output, &self.reference[step]));

        // 4. Salience metrics at answer steps.
        let salient = &workload.salient_at[step];
        if !salient.is_empty() {
            let selected_set: BTreeSet<usize> = decision.selected.iter().copied().collect();
            let s = set_f1(&(&selected_set & salient), salient);
            self.recall.push(s.recall);
            let predicted: BTreeSet<usize> = selected_set
                .intersection(&self.salient_universe)
                .copied()
                .collect();
            self.f1.push(set_f1(&predicted, salient).f1);
            self.hits.push(if s.recall >= 1.0 { 1.0 } else { 0.0 });
        }

        // 5. Observe weights over all residents (charge-domain accumulation
        //    sees every row).
        self.weights.clear();
        self.weights.extend(self.scored.iter().map(|&(_, s)| s));
        softmax_in_place(&mut self.weights);
        self.observed.clear();
        self.observed.extend(
            self.scored
                .iter()
                .map(|&(t, _)| t)
                .zip(self.weights.iter().copied()),
        );
        policy.observe(step, &self.observed);

        // 6. Insert the newly generated token, evicting on overflow. The
        //    key/value slices are copied straight into the arenas.
        let new_token = prefill_len + step;
        let new_key = &workload.decode_keys[step];
        let new_value = &workload.decode_values[step];
        if let Some(slot) = self.store.first_free_slot() {
            self.store
                .write_slot_parts(slot, new_token, new_key, new_value)
                .expect("slot in range");
            policy.note_inserted(new_token);
        } else {
            self.resident_scratch.clear();
            self.resident_scratch
                .extend(self.store.iter_tokens().map(|(t, _)| t));
            if let Some(victim) = policy.evict(step, &self.resident_scratch) {
                let slot = self
                    .store
                    .slot_of_token(victim)
                    .expect("policy must evict a resident token");
                self.store
                    .write_slot_parts(slot, new_token, new_key, new_value)
                    .expect("slot in range");
                policy.note_inserted(new_token);
            }
            // None: the incoming token is dropped (policy refused to evict).
        }
    }

    /// Consumes the state into the aggregate [`SimResult`].
    pub(crate) fn finish(self, policy: &dyn Policy) -> SimResult {
        SimResult {
            policy: policy.name().to_owned(),
            workload: self.workload.name.clone(),
            output_cosine: self.cos.value(),
            output_rel_error: self.rel.value(),
            salient_recall: self.recall.value(),
            salient_f1: self.f1.value(),
            retrieval_accuracy: self.hits.value(),
            mean_selected: self.n_selected.value(),
            mean_resident: self.n_resident.value(),
            steps: self.workload.decode_queries.len(),
            answer_steps: usize::try_from(self.recall.count()).expect("step count fits usize"),
        }
    }
}

/// The causal prefill attention-probability matrix of a workload (what the
/// prefill static-pruning stage ranks tokens with).
///
/// The prompt keys are flattened into a contiguous arena once, then every
/// query row runs a strided [`kernels::dot_prefix`] pass — the pre-refactor
/// version chased one heap allocation per key per query.
#[must_use]
pub fn prefill_attention_matrix(workload: &DecodeWorkload) -> Matrix {
    let seq = workload.prefill_keys.len();
    let dim = workload.dim;
    let scale = 1.0 / (dim as f32).sqrt();
    let mut arena = Vec::with_capacity(seq * dim);
    for k in &workload.prefill_keys {
        arena.extend_from_slice(k);
    }
    let keys = RowView::contiguous(&arena, dim);
    let mut probs = Matrix::zeros(seq, seq);
    for t in 0..seq {
        let q = &workload.prefill_queries[t];
        let row = probs.row_mut(t);
        // Mask the future by excluding it from the scores and the softmax.
        kernels::dot_prefix(q, keys, scale, &mut row[..t + 1]);
        softmax_in_place(&mut row[..t + 1]);
    }
    probs
}

/// Exact attention over the `selected` resident tokens of `store`.
///
/// An empty selection returns a deterministic zero vector of the store's
/// dimension (the pruned model attends to nothing, so it contributes
/// nothing). Runs the fused [`kernels::attend_gather`] kernel over the
/// store's flat key/value arenas.
///
/// # Panics
///
/// Panics if a selected token is not resident. The harness↔policy contract
/// (see [`Policy`]) requires selections to be a subset of the scored
/// resident set; silently skipping a non-resident token would mask a broken
/// policy behind quietly degraded fidelity metrics.
#[must_use]
pub fn attention_over(store: &KvStore, selected: &[usize], query: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; store.dim()];
    if selected.is_empty() {
        return out;
    }
    let mut slots = Vec::with_capacity(selected.len());
    gather_selected_slots(store, selected, &mut slots);
    let scale = 1.0 / (query.len() as f32).sqrt();
    let mut weights = Vec::with_capacity(slots.len());
    kernels::attend_gather(
        query,
        store.keys_view(),
        store.values_view(),
        &slots,
        scale,
        &mut weights,
        &mut out,
    );
    out
}

/// Resolves a policy's selection to physical slots (shared by the per-step
/// core and [`attention_over`], so the residency contract is enforced — and
/// worded — in exactly one place).
///
/// # Panics
///
/// Panics if a selected token is not resident (see the harness↔policy
/// contract on [`Policy`]).
fn gather_selected_slots(store: &KvStore, selected: &[usize], slots: &mut Vec<usize>) {
    slots.clear();
    for &t in selected {
        slots.push(store.slot_of_token(t).unwrap_or_else(|| {
            panic!(
                "policy selected token {t}, which is not resident \
                 (selections must be a subset of the scored resident set)"
            )
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{FullCache, HybridStaticDynamic, OracleTopK, SnapKv, StreamingLlm, H2O};
    use unicaim_attention::workloads::{multi_hop_task, needle_task, summary_task};
    use unicaim_attention::KvEntry;

    #[test]
    fn full_cache_is_exact() {
        let w = needle_task(96, 12, 1);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert!(
            r.output_cosine > 0.999,
            "full cache must match the reference, {r:?}"
        );
        assert!(r.output_rel_error < 1e-3);
        assert!((r.salient_recall - 1.0).abs() < 1e-12);
        assert!((r.retrieval_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_topk_tracks_reference_closely() {
        let w = needle_task(128, 16, 2);
        let mut p = OracleTopK::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 16));
        assert!(r.output_cosine > 0.95, "{r:?}");
        assert!(r.salient_recall > 0.99, "{r:?}");
        assert!((r.mean_selected - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_streaming_on_mid_context_needle() {
        let w = needle_task(256, 32, 3);
        let capacity = 96;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 24);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(capacity, 24).with_prefill_budget(capacity - 16),
        );
        let mut streaming = StreamingLlm::new(4);
        let r_s = simulate_decode(
            &w,
            &mut streaming,
            &SimConfig::new(capacity, 24).with_prefill_budget(capacity),
        );
        assert!(
            r_h.salient_recall > r_s.salient_recall + 0.3,
            "hybrid {:.2} must clearly beat streaming {:.2} on a mid-context needle",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn hybrid_matches_or_beats_snapkv_on_multihop() {
        let w = multi_hop_task(384, 48, 4);
        let capacity = 128;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 32);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(capacity, 32).with_prefill_budget(capacity - 16),
        );
        let mut snap = SnapKv::new(16);
        let r_s = simulate_decode(
            &w,
            &mut snap,
            &SimConfig::new(capacity + 48, 32).with_prefill_budget(capacity),
        );
        assert!(
            r_h.salient_recall >= r_s.salient_recall - 1e-9,
            "hybrid {:.3} must be at least as good as snapkv {:.3}",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn h2o_runs_on_summary_task() {
        let w = summary_task(192, 32, 5);
        let mut p = H2O::new(8);
        let r = simulate_decode(&w, &mut p, &SimConfig::new(96, 32).with_prefill_budget(96));
        assert!(r.steps == 32);
        assert!(r.output_cosine > 0.3);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let w = needle_task(128, 32, 6);
        let mut p = HybridStaticDynamic::new(40, 8, 16);
        let cfg = SimConfig::new(48, 16).with_prefill_budget(40);
        let r = simulate_decode(&w, &mut p, &cfg);
        assert!(r.mean_resident <= 48.0 + 1e-9, "{r:?}");
    }

    #[test]
    fn block_topk_sits_between_streaming_and_oracle() {
        use crate::policies::BlockTopK;
        let w = needle_task(256, 32, 11);
        let k = 24;
        let run = |policy: &mut dyn crate::Policy, cap: usize| {
            simulate_decode(&w, policy, &SimConfig::new(cap, k))
        };
        let cap = w.total_tokens();
        let mut oracle = OracleTopK::new();
        let r_oracle = run(&mut oracle, cap);
        let mut block = BlockTopK::new(8);
        let r_block = run(&mut block, cap);
        // Block granularity can only lose fidelity relative to exact top-k.
        assert!(r_block.output_cosine <= r_oracle.output_cosine + 0.02);
        // But it still retrieves the needle (the hot block is selected).
        assert!(r_block.salient_recall > 0.9, "{r_block:?}");
    }

    #[test]
    fn distractors_waste_static_budget_but_dynamic_selection_recovers() {
        use unicaim_attention::workloads::distractor_task;
        let w = distractor_task(256, 32, 5, 10);
        // Generous capacity: the true needle survives static pruning even
        // next to heavily mentioned distractors, and top-k finds it.
        let mut p = HybridStaticDynamic::new(112, 16, 32);
        let r = simulate_decode(
            &w,
            &mut p,
            &SimConfig::new(128, 32).with_prefill_budget(112),
        );
        assert!(
            r.salient_recall > 0.9,
            "hybrid must retrieve the true needle despite distractors: {r:?}"
        );
    }

    #[test]
    fn policies_run_on_transformer_traces() {
        use unicaim_attention::workloads::transformer_trace;
        let w = transformer_trace(96, 12, 3);
        let mut full = FullCache::new();
        let r = simulate_decode(&w, &mut full, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert!(
            r.output_cosine > 0.999,
            "full cache must be exact on real traces: {r:?}"
        );
        let mut hybrid = HybridStaticDynamic::new(48, 12, 24);
        let r2 = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(60, 24).with_prefill_budget(48),
        );
        assert!(r2.output_cosine.is_finite());
        assert!(r2.mean_resident <= 60.0 + 1e-9);
    }

    #[test]
    fn ratio_capacity_floors() {
        let w = needle_task(64, 8, 7);
        assert_eq!(ratio_capacity(&w, 1.0), 72);
        assert_eq!(ratio_capacity(&w, 0.5), 36);
        assert_eq!(ratio_capacity(&w, 0.001), 8);
    }

    #[test]
    fn prefill_attention_matrix_is_causal_stochastic() {
        let w = needle_task(48, 4, 8);
        let attn = prefill_attention_matrix(&w);
        for t in 0..48 {
            let sum: f32 = attn.row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {t} sums to {sum}");
            for s in (t + 1)..48 {
                assert_eq!(attn.get(t, s), 0.0);
            }
        }
    }

    /// A deliberately broken policy that selects a token id that can never
    /// be resident (used to pin the harness contract).
    struct SelectsGhostToken;

    impl crate::Policy for SelectsGhostToken {
        fn name(&self) -> &'static str {
            "selects_ghost_token"
        }
        fn prefill_keep(&mut self, attn: &Matrix, budget: usize) -> Vec<usize> {
            (0..attn.rows().min(budget)).collect()
        }
        fn select(&mut self, _step: usize, _scored: &[(usize, f32)], _k: usize) -> StepDecision {
            StepDecision {
                selected: vec![usize::MAX],
            }
        }
        fn observe(&mut self, _step: usize, _weights: &[(usize, f32)]) {}
        fn evict(&mut self, _step: usize, resident: &[usize]) -> Option<usize> {
            resident.first().copied()
        }
    }

    /// A policy that never selects anything (empty dynamic selection).
    struct SelectsNothing;

    impl crate::Policy for SelectsNothing {
        fn name(&self) -> &'static str {
            "selects_nothing"
        }
        fn prefill_keep(&mut self, attn: &Matrix, budget: usize) -> Vec<usize> {
            (0..attn.rows().min(budget)).collect()
        }
        fn select(&mut self, _step: usize, _scored: &[(usize, f32)], _k: usize) -> StepDecision {
            StepDecision {
                selected: Vec::new(),
            }
        }
        fn observe(&mut self, _step: usize, _weights: &[(usize, f32)]) {}
        fn evict(&mut self, _step: usize, resident: &[usize]) -> Option<usize> {
            resident.first().copied()
        }
    }

    use crate::policy::StepDecision;

    #[test]
    #[should_panic(expected = "not resident")]
    fn non_resident_selection_panics() {
        let w = needle_task(32, 4, 20);
        let mut p = SelectsGhostToken;
        let _ = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 4));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn attention_over_rejects_non_resident_token() {
        let store = KvStore::new(4, 2);
        let _ = attention_over(&store, &[7], &[1.0, 0.0]);
    }

    #[test]
    fn empty_selection_is_deterministic_zero_vector() {
        let mut store = KvStore::new(4, 3);
        store
            .append(KvEntry {
                token_id: 0,
                key: vec![1.0, 0.0, 0.0],
                value: vec![0.5, 0.5, 0.5],
            })
            .unwrap();
        assert_eq!(attention_over(&store, &[], &[1.0, 0.0, 0.0]), vec![0.0; 3]);

        // Through the harness: a policy that selects nothing produces zero
        // outputs (cosine 0 against any nonzero reference), not a crash.
        let w = needle_task(32, 4, 21);
        let mut p = SelectsNothing;
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 4));
        assert_eq!(r.mean_selected, 0.0);
        assert!(r.output_cosine.abs() < 1e-12, "{r:?}");
    }

    #[test]
    fn answer_steps_distinguishes_salient_free_workloads() {
        // A workload with answer steps: zero recall means retrieval failed.
        let w = needle_task(64, 8, 22);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert_eq!(r.answer_steps, w.answer_steps.len());
        assert!(r.answer_steps > 0);

        // A salient-free workload: the salience means are vacuous and
        // `answer_steps == 0` says so.
        use unicaim_attention::workloads::transformer_trace;
        let w = transformer_trace(48, 6, 23);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert_eq!(r.answer_steps, 0);
        assert_eq!(r.salient_recall, 0.0);
        assert_eq!(r.retrieval_accuracy, 0.0);
    }

    #[test]
    fn streaming_resident_set_is_sinks_plus_window() {
        let w = needle_task(128, 24, 9);
        let mut p = StreamingLlm::new(4);
        let cfg = SimConfig::new(32, 32);
        let _ = simulate_decode(&w, &mut p, &cfg);
        // After the run the policy survived; the capacity test above covers
        // the invariant. (Resident tracking is internal to the harness.)
    }
}
