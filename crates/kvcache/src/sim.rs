//! The decode simulation harness: drives any [`Policy`] over a
//! [`DecodeWorkload`], computing retrieval and fidelity metrics.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use unicaim_attention::metrics::{cosine_similarity, relative_l2_error, set_f1, Mean};
use unicaim_attention::workloads::DecodeWorkload;
use unicaim_attention::{attention_output, softmax_in_place, KvEntry, KvStore, Matrix};

use crate::policy::Policy;

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Physical KV-cache capacity in tokens (slots).
    pub capacity: usize,
    /// Dynamic top-k width passed to the policy each step.
    pub k: usize,
    /// Prefill keep budget handed to the policy (usually `capacity` minus
    /// the reserved decode slots).
    pub prefill_budget: usize,
}

impl SimConfig {
    /// A config with `capacity` slots and top-`k` selection; the prefill
    /// budget defaults to `capacity`.
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> Self {
        Self {
            capacity,
            k,
            prefill_budget: capacity,
        }
    }

    /// Sets the prefill budget (builder-style).
    #[must_use]
    pub fn with_prefill_budget(mut self, budget: usize) -> Self {
        self.prefill_budget = budget;
        self
    }
}

/// Capacity for a relative cache-size sweep: `ratio` of the workload's total
/// token count, floored at 8 tokens.
#[must_use]
pub fn ratio_capacity(workload: &DecodeWorkload, ratio: f64) -> usize {
    ((workload.total_tokens() as f64 * ratio).round() as usize).max(8)
}

/// Aggregate result of one simulated decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy display name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Mean cosine similarity between pruned and full attention outputs.
    pub output_cosine: f64,
    /// Mean relative L2 error of the pruned attention output.
    pub output_rel_error: f64,
    /// Mean recall of ground-truth salient tokens among *selected* tokens at
    /// answer steps.
    pub salient_recall: f64,
    /// Mean F1 of selected-vs-salient restricted to the salient universe.
    pub salient_f1: f64,
    /// Fraction of answer steps at which *every* salient token was selected.
    pub retrieval_accuracy: f64,
    /// Mean number of tokens selected per step.
    pub mean_selected: f64,
    /// Mean resident tokens across steps.
    pub mean_resident: f64,
    /// Number of decode steps simulated.
    pub steps: usize,
}

/// Runs `policy` over `workload` with the given configuration.
///
/// The harness owns the KV store and all attention math; the policy only
/// decides what to keep, select, and evict (see [`Policy`]). The decode-step
/// order mirrors the UniCAIM hardware flow: score residents → select →
/// exact attention over the selection → observe weights over all residents
/// → insert the newly generated token (evicting on overflow).
///
/// # Panics
///
/// Panics if the policy's prefill keep set exceeds the cache capacity or if
/// it evicts a token that is not resident.
#[must_use]
pub fn simulate_decode(
    workload: &DecodeWorkload,
    policy: &mut dyn Policy,
    config: &SimConfig,
) -> SimResult {
    let dim = workload.dim;
    let prefill_len = workload.prefill_keys.len();

    // --- Prefill: causal attention matrix and static keep decision --------
    let attn = prefill_attention_matrix(workload);
    let keep = policy.prefill_keep(&attn, config.prefill_budget.min(prefill_len));
    let mut store = KvStore::new(config.capacity, dim);
    for &t in &keep {
        store
            .append(KvEntry {
                token_id: t,
                key: workload.prefill_keys[t].clone(),
                value: workload.prefill_values[t].clone(),
            })
            .expect("prefill keep set must fit the cache capacity");
    }

    // --- Decode loop -------------------------------------------------------
    let reference = workload.full_attention_reference();
    let mut cos = Mean::new();
    let mut rel = Mean::new();
    let mut recall = Mean::new();
    let mut f1 = Mean::new();
    let mut hits = Mean::new();
    let mut n_selected = Mean::new();
    let mut n_resident = Mean::new();
    let salient_universe: BTreeSet<usize> = workload
        .salient_at
        .iter()
        .flat_map(|s| s.iter().copied())
        .collect();

    for (step, query) in workload.decode_queries.iter().enumerate() {
        // 1. Score every resident token.
        let mut scored: Vec<(usize, f32)> = store
            .iter()
            .map(|(_, e)| (e.token_id, Matrix::dot(query, &e.key) / (dim as f32).sqrt()))
            .collect();
        scored.sort_by_key(|&(t, _)| t);
        n_resident.push(scored.len() as f64);

        // 2. Dynamic selection.
        let decision = policy.select(step, &scored, config.k);
        n_selected.push(decision.selected.len() as f64);

        // 3. Exact attention over the selection.
        let output = attention_over(&store, &decision.selected, query);
        cos.push(cosine_similarity(&output, &reference[step]));
        rel.push(relative_l2_error(&output, &reference[step]));

        // 4. Salience metrics at answer steps.
        let salient = &workload.salient_at[step];
        if !salient.is_empty() {
            let selected_set: BTreeSet<usize> = decision.selected.iter().copied().collect();
            let s = set_f1(&(&selected_set & salient), salient);
            recall.push(s.recall);
            let predicted: BTreeSet<usize> = selected_set
                .intersection(&salient_universe)
                .copied()
                .collect();
            f1.push(set_f1(&predicted, salient).f1);
            hits.push(if s.recall >= 1.0 { 1.0 } else { 0.0 });
        }

        // 5. Observe weights over all residents (charge-domain accumulation
        //    sees every row).
        let mut weights: Vec<f32> = scored.iter().map(|&(_, s)| s).collect();
        softmax_in_place(&mut weights);
        let observed: Vec<(usize, f32)> = scored
            .iter()
            .map(|&(t, _)| t)
            .zip(weights.iter().copied())
            .collect();
        policy.observe(step, &observed);

        // 6. Insert the newly generated token, evicting on overflow.
        let new_token = prefill_len + step;
        let entry = KvEntry {
            token_id: new_token,
            key: workload.decode_keys[step].clone(),
            value: workload.decode_values[step].clone(),
        };
        if let Some(slot) = store.first_free_slot() {
            store.write_slot(slot, entry).expect("slot in range");
            policy.note_inserted(new_token);
        } else {
            let resident: Vec<usize> = {
                let mut r = store.token_ids();
                r.sort_unstable();
                r
            };
            if let Some(victim) = policy.evict(step, &resident) {
                let slot = store
                    .slot_of_token(victim)
                    .expect("policy must evict a resident token");
                store.write_slot(slot, entry).expect("slot in range");
                policy.note_inserted(new_token);
            }
            // None: the incoming token is dropped (policy refused to evict).
        }
    }

    SimResult {
        policy: policy.name().to_owned(),
        workload: workload.name.clone(),
        output_cosine: cos.value(),
        output_rel_error: rel.value(),
        salient_recall: recall.value(),
        salient_f1: f1.value(),
        retrieval_accuracy: hits.value(),
        mean_selected: n_selected.value(),
        mean_resident: n_resident.value(),
        steps: workload.decode_queries.len(),
    }
}

/// The causal prefill attention-probability matrix of a workload (what the
/// prefill static-pruning stage ranks tokens with).
#[must_use]
pub fn prefill_attention_matrix(workload: &DecodeWorkload) -> Matrix {
    let seq = workload.prefill_keys.len();
    let dim = workload.dim as f32;
    let mut rows = Vec::with_capacity(seq);
    for t in 0..seq {
        let q = &workload.prefill_queries[t];
        let mut row = vec![0.0f32; seq];
        for (slot, key) in row.iter_mut().zip(&workload.prefill_keys).take(t + 1) {
            *slot = Matrix::dot(q, key) / dim.sqrt();
        }
        // Mask the future by excluding it from the softmax.
        let (past, _) = row.split_at_mut(t + 1);
        softmax_in_place(past);
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

fn attention_over(store: &KvStore, selected: &[usize], query: &[f32]) -> Vec<f32> {
    let mut keys: Vec<&[f32]> = Vec::with_capacity(selected.len());
    let mut values: Vec<&[f32]> = Vec::with_capacity(selected.len());
    for &t in selected {
        if let Some(slot) = store.slot_of_token(t) {
            let e = store.slot(slot).expect("occupied");
            keys.push(&e.key);
            values.push(&e.value);
        }
    }
    attention_output(query, &keys, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{FullCache, HybridStaticDynamic, OracleTopK, SnapKv, StreamingLlm, H2O};
    use unicaim_attention::workloads::{multi_hop_task, needle_task, summary_task};

    #[test]
    fn full_cache_is_exact() {
        let w = needle_task(96, 12, 1);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert!(
            r.output_cosine > 0.999,
            "full cache must match the reference, {r:?}"
        );
        assert!(r.output_rel_error < 1e-3);
        assert!((r.salient_recall - 1.0).abs() < 1e-12);
        assert!((r.retrieval_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_topk_tracks_reference_closely() {
        let w = needle_task(128, 16, 2);
        let mut p = OracleTopK::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 16));
        assert!(r.output_cosine > 0.95, "{r:?}");
        assert!(r.salient_recall > 0.99, "{r:?}");
        assert!((r.mean_selected - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_streaming_on_mid_context_needle() {
        let w = needle_task(256, 32, 3);
        let capacity = 96;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 24);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(capacity, 24).with_prefill_budget(capacity - 16),
        );
        let mut streaming = StreamingLlm::new(4);
        let r_s = simulate_decode(
            &w,
            &mut streaming,
            &SimConfig::new(capacity, 24).with_prefill_budget(capacity),
        );
        assert!(
            r_h.salient_recall > r_s.salient_recall + 0.3,
            "hybrid {:.2} must clearly beat streaming {:.2} on a mid-context needle",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn hybrid_matches_or_beats_snapkv_on_multihop() {
        let w = multi_hop_task(384, 48, 4);
        let capacity = 128;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 32);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(capacity, 32).with_prefill_budget(capacity - 16),
        );
        let mut snap = SnapKv::new(16);
        let r_s = simulate_decode(
            &w,
            &mut snap,
            &SimConfig::new(capacity + 48, 32).with_prefill_budget(capacity),
        );
        assert!(
            r_h.salient_recall >= r_s.salient_recall - 1e-9,
            "hybrid {:.3} must be at least as good as snapkv {:.3}",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn h2o_runs_on_summary_task() {
        let w = summary_task(192, 32, 5);
        let mut p = H2O::new(8);
        let r = simulate_decode(&w, &mut p, &SimConfig::new(96, 32).with_prefill_budget(96));
        assert!(r.steps == 32);
        assert!(r.output_cosine > 0.3);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let w = needle_task(128, 32, 6);
        let mut p = HybridStaticDynamic::new(40, 8, 16);
        let cfg = SimConfig::new(48, 16).with_prefill_budget(40);
        let r = simulate_decode(&w, &mut p, &cfg);
        assert!(r.mean_resident <= 48.0 + 1e-9, "{r:?}");
    }

    #[test]
    fn block_topk_sits_between_streaming_and_oracle() {
        use crate::policies::BlockTopK;
        let w = needle_task(256, 32, 11);
        let k = 24;
        let run = |policy: &mut dyn crate::Policy, cap: usize| {
            simulate_decode(&w, policy, &SimConfig::new(cap, k))
        };
        let cap = w.total_tokens();
        let mut oracle = OracleTopK::new();
        let r_oracle = run(&mut oracle, cap);
        let mut block = BlockTopK::new(8);
        let r_block = run(&mut block, cap);
        // Block granularity can only lose fidelity relative to exact top-k.
        assert!(r_block.output_cosine <= r_oracle.output_cosine + 0.02);
        // But it still retrieves the needle (the hot block is selected).
        assert!(r_block.salient_recall > 0.9, "{r_block:?}");
    }

    #[test]
    fn distractors_waste_static_budget_but_dynamic_selection_recovers() {
        use unicaim_attention::workloads::distractor_task;
        let w = distractor_task(256, 32, 5, 10);
        // Generous capacity: the true needle survives static pruning even
        // next to heavily mentioned distractors, and top-k finds it.
        let mut p = HybridStaticDynamic::new(112, 16, 32);
        let r = simulate_decode(
            &w,
            &mut p,
            &SimConfig::new(128, 32).with_prefill_budget(112),
        );
        assert!(
            r.salient_recall > 0.9,
            "hybrid must retrieve the true needle despite distractors: {r:?}"
        );
    }

    #[test]
    fn policies_run_on_transformer_traces() {
        use unicaim_attention::workloads::transformer_trace;
        let w = transformer_trace(96, 12, 3);
        let mut full = FullCache::new();
        let r = simulate_decode(&w, &mut full, &SimConfig::new(w.total_tokens(), usize::MAX));
        assert!(
            r.output_cosine > 0.999,
            "full cache must be exact on real traces: {r:?}"
        );
        let mut hybrid = HybridStaticDynamic::new(48, 12, 24);
        let r2 = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(60, 24).with_prefill_budget(48),
        );
        assert!(r2.output_cosine.is_finite());
        assert!(r2.mean_resident <= 60.0 + 1e-9);
    }

    #[test]
    fn ratio_capacity_floors() {
        let w = needle_task(64, 8, 7);
        assert_eq!(ratio_capacity(&w, 1.0), 72);
        assert_eq!(ratio_capacity(&w, 0.5), 36);
        assert_eq!(ratio_capacity(&w, 0.001), 8);
    }

    #[test]
    fn prefill_attention_matrix_is_causal_stochastic() {
        let w = needle_task(48, 4, 8);
        let attn = prefill_attention_matrix(&w);
        for t in 0..48 {
            let sum: f32 = attn.row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {t} sums to {sum}");
            for s in (t + 1)..48 {
                assert_eq!(attn.get(t, s), 0.0);
            }
        }
    }

    #[test]
    fn streaming_resident_set_is_sinks_plus_window() {
        let w = needle_task(128, 24, 9);
        let mut p = StreamingLlm::new(4);
        let cfg = SimConfig::new(32, 32);
        let _ = simulate_decode(&w, &mut p, &cfg);
        // After the run the policy survived; the capacity test above covers
        // the invariant. (Resident tracking is internal to the harness.)
    }
}
