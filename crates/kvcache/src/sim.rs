//! The single-sequence decode harness: configuration, aggregate metrics,
//! and the run-to-completion [`simulate_decode`] wrapper over the
//! incremental [`DecodeSession`](crate::DecodeSession) API.

use serde::{Deserialize, Serialize};
use unicaim_attention::kernels::{self, RowView};
use unicaim_attention::workloads::DecodeWorkload;
use unicaim_attention::{softmax_in_place, KvStore, Matrix, Precision};

use crate::error::HarnessError;
use crate::policy::Policy;
use crate::session::{gather_selected_slots, DecodeSession};

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Physical KV-cache capacity in tokens (slots).
    pub capacity: usize,
    /// Dynamic top-k width passed to the policy each step.
    pub k: usize,
    /// Prefill keep budget handed to the policy. Defaults to `capacity`
    /// (see [`SimConfig::new`]); use
    /// [`SimConfig::reserved_decode_slots`] or
    /// [`SimConfig::with_prefill_budget`] to hold back decode slots the
    /// prefill stage must not fill.
    pub prefill_budget: usize,
    /// Key-arena storage precision of the session's [`KvStore`]: every
    /// per-step score (resident scan, selection attention, observed
    /// weights) is computed against keys at this precision, while values
    /// and the exact-attention reference stay `f32` — the software twin
    /// of the array's reduced-precision cells. Defaults to
    /// [`Precision::F32`].
    pub precision: Precision,
}

impl SimConfig {
    /// A config with `capacity` slots and top-`k` selection; the prefill
    /// budget defaults to the full `capacity` (no slots are reserved for
    /// decode — a policy like the paper's hybrid scheme typically wants
    /// [`SimConfig::reserved_decode_slots`] instead).
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> Self {
        Self {
            capacity,
            k,
            prefill_budget: capacity,
            precision: Precision::F32,
        }
    }

    /// A config with `capacity` slots and top-`k` selection that reserves
    /// `m` decode slots: the prefill budget is `capacity - m` (saturating),
    /// the paper's fixed `H + M` cache split.
    ///
    /// ```
    /// use unicaim_kvcache::SimConfig;
    /// let cfg = SimConfig::reserved_decode_slots(64, 16, 16);
    /// assert_eq!(cfg.prefill_budget, 48);
    /// assert_eq!(cfg, SimConfig::new(64, 16).with_prefill_budget(48));
    /// ```
    #[must_use]
    pub fn reserved_decode_slots(capacity: usize, k: usize, m: usize) -> Self {
        Self {
            capacity,
            k,
            prefill_budget: capacity.saturating_sub(m),
            precision: Precision::F32,
        }
    }

    /// Sets the prefill budget (builder-style).
    #[must_use]
    pub fn with_prefill_budget(mut self, budget: usize) -> Self {
        self.prefill_budget = budget;
        self
    }

    /// Sets the key-arena storage precision (builder-style).
    ///
    /// ```
    /// use unicaim_attention::Precision;
    /// use unicaim_kvcache::SimConfig;
    /// let cfg = SimConfig::new(64, 16).with_precision(Precision::Int8);
    /// assert_eq!(cfg.precision, Precision::Int8);
    /// ```
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Capacity for a relative cache-size sweep: `ratio` of the workload's total
/// token count, floored at 8 tokens.
#[must_use]
pub fn ratio_capacity(workload: &DecodeWorkload, ratio: f64) -> usize {
    ((workload.total_tokens() as f64 * ratio).round() as usize).max(8)
}

/// Aggregate result of one simulated decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy display name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Mean cosine similarity between pruned and full attention outputs.
    pub output_cosine: f64,
    /// Mean relative L2 error of the pruned attention output.
    pub output_rel_error: f64,
    /// Mean recall of ground-truth salient tokens among *selected* tokens at
    /// answer steps.
    pub salient_recall: f64,
    /// Mean F1 of selected-vs-salient restricted to the salient universe.
    pub salient_f1: f64,
    /// Fraction of answer steps at which *every* salient token was selected.
    pub retrieval_accuracy: f64,
    /// Mean number of tokens selected per step.
    pub mean_selected: f64,
    /// Mean resident tokens across steps.
    pub mean_resident: f64,
    /// Number of decode steps simulated.
    pub steps: usize,
    /// Number of *answer* steps (steps with a non-empty salient set) that the
    /// salience means aggregate over. Distinguishes "recall was zero" from
    /// "the workload had nothing to retrieve": when `answer_steps == 0`,
    /// `salient_recall`, `salient_f1`, and `retrieval_accuracy` are all
    /// vacuously `0.0` and should not be compared across policies.
    pub answer_steps: usize,
}

/// Runs `policy` over `workload` with the given configuration.
///
/// The harness owns the KV store and all attention math; the policy only
/// decides what to keep, select, and evict (see [`Policy`]). The decode-step
/// order mirrors the UniCAIM hardware flow: score residents → select →
/// exact attention over the selection → observe weights over all residents
/// → insert the newly generated token (evicting on overflow).
///
/// This is a thin wrapper over the incremental
/// [`DecodeSession`](crate::DecodeSession) lifecycle: `prefill`, `step`
/// until done, `finish`.
///
/// # Errors
///
/// Propagates the first harness ↔ policy contract violation as a
/// [`HarnessError`] (prefill keep set over capacity, non-resident selection
/// or eviction, …) instead of panicking.
pub fn simulate_decode(
    workload: &DecodeWorkload,
    policy: &mut dyn Policy,
    config: &SimConfig,
) -> Result<SimResult, HarnessError> {
    let mut session = DecodeSession::prefill_borrowed(workload, policy, config)?;
    session.run_to_completion()?;
    Ok(session.finish())
}

/// The causal prefill attention-probability matrix of a workload (what the
/// prefill static-pruning stage ranks tokens with).
///
/// The prompt keys are flattened into a contiguous arena once, then every
/// query row runs a strided [`kernels::dot_prefix`] pass — the pre-refactor
/// version chased one heap allocation per key per query.
#[must_use]
pub fn prefill_attention_matrix(workload: &DecodeWorkload) -> Matrix {
    let seq = workload.prefill_keys.len();
    let dim = workload.dim;
    let scale = 1.0 / (dim as f32).sqrt();
    let mut arena = Vec::with_capacity(seq * dim);
    for k in &workload.prefill_keys {
        arena.extend_from_slice(k);
    }
    let keys = RowView::contiguous(&arena, dim);
    let mut probs = Matrix::zeros(seq, seq);
    for t in 0..seq {
        let q = &workload.prefill_queries[t];
        let row = probs.row_mut(t);
        // Mask the future by excluding it from the scores and the softmax.
        kernels::dot_prefix(q, keys, scale, &mut row[..t + 1]);
        softmax_in_place(&mut row[..t + 1]);
    }
    probs
}

/// Exact attention over the `selected` resident tokens of `store`.
///
/// An empty selection returns a deterministic zero vector of the store's
/// dimension (the pruned model attends to nothing, so it contributes
/// nothing). Runs the fused [`kernels::attend_gather`] kernel over the
/// store's flat key/value arenas — or its quantized twin
/// [`kernels::attend_gather_q`] when the store keeps a quantized key
/// arena, so the convenience API scores at the same precision the decode
/// hot path does.
///
/// # Errors
///
/// Returns [`HarnessError::NonResidentToken`] when a selected token is not
/// resident. The harness↔policy contract (see [`Policy`]) requires
/// selections to be a subset of the scored resident set; silently skipping
/// a non-resident token would mask a broken policy behind quietly degraded
/// fidelity metrics.
pub fn attention_over(
    store: &KvStore,
    selected: &[usize],
    query: &[f32],
) -> Result<Vec<f32>, HarnessError> {
    let mut out = vec![0.0; store.dim()];
    if selected.is_empty() {
        return Ok(out);
    }
    let mut slots = Vec::with_capacity(selected.len());
    gather_selected_slots(store, selected, &mut slots)
        .map_err(|token| HarnessError::NonResidentToken { token })?;
    let scale = 1.0 / (query.len() as f32).sqrt();
    let mut weights = Vec::with_capacity(slots.len());
    if let Some(qkeys) = store.quant_keys_view() {
        let mut query_q = vec![0i8; query.len()];
        let query_scale = kernels::quantize_row_i8(query, &mut query_q);
        kernels::attend_gather_q(
            &query_q,
            query_scale,
            qkeys,
            store.values_view(),
            &slots,
            scale,
            &mut weights,
            &mut out,
        );
    } else {
        kernels::attend_gather(
            query,
            store.keys_view(),
            store.values_view(),
            &slots,
            scale,
            &mut weights,
            &mut out,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{FullCache, HybridStaticDynamic, OracleTopK, SnapKv, StreamingLlm, H2O};
    use unicaim_attention::workloads::{multi_hop_task, needle_task, summary_task};
    use unicaim_attention::KvEntry;

    #[test]
    fn full_cache_is_exact() {
        let w = needle_task(96, 12, 1);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX)).unwrap();
        assert!(
            r.output_cosine > 0.999,
            "full cache must match the reference, {r:?}"
        );
        assert!(r.output_rel_error < 1e-3);
        assert!((r.salient_recall - 1.0).abs() < 1e-12);
        assert!((r.retrieval_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_topk_tracks_reference_closely() {
        let w = needle_task(128, 16, 2);
        let mut p = OracleTopK::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 16)).unwrap();
        assert!(r.output_cosine > 0.95, "{r:?}");
        assert!(r.salient_recall > 0.99, "{r:?}");
        assert!((r.mean_selected - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_streaming_on_mid_context_needle() {
        let w = needle_task(256, 32, 3);
        let capacity = 96;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 24);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::reserved_decode_slots(capacity, 24, 16),
        )
        .unwrap();
        let mut streaming = StreamingLlm::new(4);
        let r_s = simulate_decode(
            &w,
            &mut streaming,
            &SimConfig::new(capacity, 24).with_prefill_budget(capacity),
        )
        .unwrap();
        assert!(
            r_h.salient_recall > r_s.salient_recall + 0.3,
            "hybrid {:.2} must clearly beat streaming {:.2} on a mid-context needle",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn hybrid_matches_or_beats_snapkv_on_multihop() {
        let w = multi_hop_task(384, 48, 4);
        let capacity = 128;
        let mut hybrid = HybridStaticDynamic::new(capacity - 16, 16, 32);
        let r_h = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::reserved_decode_slots(capacity, 32, 16),
        )
        .unwrap();
        let mut snap = SnapKv::new(16);
        let r_s = simulate_decode(
            &w,
            &mut snap,
            &SimConfig::new(capacity + 48, 32).with_prefill_budget(capacity),
        )
        .unwrap();
        assert!(
            r_h.salient_recall >= r_s.salient_recall - 1e-9,
            "hybrid {:.3} must be at least as good as snapkv {:.3}",
            r_h.salient_recall,
            r_s.salient_recall
        );
    }

    #[test]
    fn h2o_runs_on_summary_task() {
        let w = summary_task(192, 32, 5);
        let mut p = H2O::new(8);
        let r =
            simulate_decode(&w, &mut p, &SimConfig::new(96, 32).with_prefill_budget(96)).unwrap();
        assert!(r.steps == 32);
        assert!(r.output_cosine > 0.3);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let w = needle_task(128, 32, 6);
        let mut p = HybridStaticDynamic::new(40, 8, 16);
        let cfg = SimConfig::new(48, 16).with_prefill_budget(40);
        let r = simulate_decode(&w, &mut p, &cfg).unwrap();
        assert!(r.mean_resident <= 48.0 + 1e-9, "{r:?}");
    }

    #[test]
    fn block_topk_sits_between_streaming_and_oracle() {
        use crate::policies::BlockTopK;
        let w = needle_task(256, 32, 11);
        let k = 24;
        let run = |policy: &mut dyn crate::Policy, cap: usize| {
            simulate_decode(&w, policy, &SimConfig::new(cap, k)).unwrap()
        };
        let cap = w.total_tokens();
        let mut oracle = OracleTopK::new();
        let r_oracle = run(&mut oracle, cap);
        let mut block = BlockTopK::new(8);
        let r_block = run(&mut block, cap);
        // Block granularity can only lose fidelity relative to exact top-k.
        assert!(r_block.output_cosine <= r_oracle.output_cosine + 0.02);
        // But it still retrieves the needle (the hot block is selected).
        assert!(r_block.salient_recall > 0.9, "{r_block:?}");
    }

    #[test]
    fn distractors_waste_static_budget_but_dynamic_selection_recovers() {
        use unicaim_attention::workloads::distractor_task;
        let w = distractor_task(256, 32, 5, 10);
        // Generous capacity: the true needle survives static pruning even
        // next to heavily mentioned distractors, and top-k finds it.
        let mut p = HybridStaticDynamic::new(112, 16, 32);
        let r =
            simulate_decode(&w, &mut p, &SimConfig::reserved_decode_slots(128, 32, 16)).unwrap();
        assert!(
            r.salient_recall > 0.9,
            "hybrid must retrieve the true needle despite distractors: {r:?}"
        );
    }

    #[test]
    fn policies_run_on_transformer_traces() {
        use unicaim_attention::workloads::transformer_trace;
        let w = transformer_trace(96, 12, 3);
        let mut full = FullCache::new();
        let r =
            simulate_decode(&w, &mut full, &SimConfig::new(w.total_tokens(), usize::MAX)).unwrap();
        assert!(
            r.output_cosine > 0.999,
            "full cache must be exact on real traces: {r:?}"
        );
        let mut hybrid = HybridStaticDynamic::new(48, 12, 24);
        let r2 = simulate_decode(
            &w,
            &mut hybrid,
            &SimConfig::new(60, 24).with_prefill_budget(48),
        )
        .unwrap();
        assert!(r2.output_cosine.is_finite());
        assert!(r2.mean_resident <= 60.0 + 1e-9);
    }

    #[test]
    fn ratio_capacity_floors() {
        let w = needle_task(64, 8, 7);
        assert_eq!(ratio_capacity(&w, 1.0), 72);
        assert_eq!(ratio_capacity(&w, 0.5), 36);
        assert_eq!(ratio_capacity(&w, 0.001), 8);
    }

    #[test]
    fn reserved_decode_slots_saturates() {
        let cfg = SimConfig::reserved_decode_slots(8, 4, 100);
        assert_eq!(cfg.prefill_budget, 0);
        assert_eq!(cfg.capacity, 8);
    }

    #[test]
    fn prefill_attention_matrix_is_causal_stochastic() {
        let w = needle_task(48, 4, 8);
        let attn = prefill_attention_matrix(&w);
        for t in 0..48 {
            let sum: f32 = attn.row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {t} sums to {sum}");
            for s in (t + 1)..48 {
                assert_eq!(attn.get(t, s), 0.0);
            }
        }
    }

    /// A deliberately broken policy that selects a token id that can never
    /// be resident (used to pin the harness contract).
    struct SelectsGhostToken;

    impl crate::Policy for SelectsGhostToken {
        fn name(&self) -> &'static str {
            "selects_ghost_token"
        }
        fn prefill_keep(&mut self, attn: &Matrix, budget: usize) -> Vec<usize> {
            (0..attn.rows().min(budget)).collect()
        }
        fn select(&mut self, _step: usize, _scored: &[(usize, f32)], _k: usize) -> StepDecision {
            StepDecision {
                selected: vec![usize::MAX],
            }
        }
        fn observe(&mut self, _step: usize, _weights: &[(usize, f32)]) {}
        fn evict(&mut self, _step: usize, resident: &[usize]) -> Option<usize> {
            resident.first().copied()
        }
    }

    /// A policy that never selects anything (empty dynamic selection).
    struct SelectsNothing;

    impl crate::Policy for SelectsNothing {
        fn name(&self) -> &'static str {
            "selects_nothing"
        }
        fn prefill_keep(&mut self, attn: &Matrix, budget: usize) -> Vec<usize> {
            (0..attn.rows().min(budget)).collect()
        }
        fn select(&mut self, _step: usize, _scored: &[(usize, f32)], _k: usize) -> StepDecision {
            StepDecision {
                selected: Vec::new(),
            }
        }
        fn observe(&mut self, _step: usize, _weights: &[(usize, f32)]) {}
        fn evict(&mut self, _step: usize, resident: &[usize]) -> Option<usize> {
            resident.first().copied()
        }
    }

    /// A policy that names a non-resident eviction victim once full.
    struct EvictsGhostToken;

    impl crate::Policy for EvictsGhostToken {
        fn name(&self) -> &'static str {
            "evicts_ghost_token"
        }
        fn prefill_keep(&mut self, attn: &Matrix, budget: usize) -> Vec<usize> {
            (0..attn.rows().min(budget)).collect()
        }
        fn select(&mut self, _step: usize, _scored: &[(usize, f32)], _k: usize) -> StepDecision {
            StepDecision {
                selected: Vec::new(),
            }
        }
        fn observe(&mut self, _step: usize, _weights: &[(usize, f32)]) {}
        fn evict(&mut self, _step: usize, _resident: &[usize]) -> Option<usize> {
            Some(usize::MAX)
        }
    }

    use crate::policy::StepDecision;

    #[test]
    fn non_resident_selection_is_a_typed_error() {
        let w = needle_task(32, 4, 20);
        let mut p = SelectsGhostToken;
        let err = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 4))
            .err()
            .unwrap();
        assert_eq!(
            err,
            HarnessError::SelectedNonResident {
                step: 0,
                token: usize::MAX
            }
        );
    }

    #[test]
    fn non_resident_eviction_is_a_typed_error() {
        let w = needle_task(32, 4, 24);
        let mut p = EvictsGhostToken;
        // Capacity exactly the prompt length: the first decode insert must
        // evict, and the policy names a ghost victim.
        let err = simulate_decode(&w, &mut p, &SimConfig::new(32, 4))
            .err()
            .unwrap();
        assert_eq!(
            err,
            HarnessError::EvictedNonResident {
                step: 0,
                token: usize::MAX
            }
        );
    }

    #[test]
    fn quantized_decode_preserves_retrieval_on_needle_task() {
        use unicaim_attention::Precision;
        // The paper's precision ablation, end to end: hybrid pruning with
        // int8 / cell3 key arenas still retrieves the needle.
        let w = needle_task(256, 32, 3);
        for precision in [Precision::Int8, Precision::Cell3Bit] {
            let mut p = HybridStaticDynamic::new(80, 16, 32);
            let cfg = SimConfig::reserved_decode_slots(96, 32, 16).with_precision(precision);
            let r = simulate_decode(&w, &mut p, &cfg).unwrap();
            assert!(
                r.salient_recall > 0.8,
                "{}: recall {} too low: {r:?}",
                precision.label(),
                r.salient_recall
            );
            assert!(r.output_cosine.is_finite());
        }
    }

    #[test]
    fn attention_over_scores_at_the_store_precision() {
        use unicaim_attention::Precision;
        let mut qstore = KvStore::with_precision(4, 3, Precision::Int8);
        let mut fstore = KvStore::new(4, 3);
        for (t, fill) in [(0usize, 0.3f32), (1, -0.7), (2, 0.9)] {
            let e = KvEntry {
                token_id: t,
                key: vec![fill, -fill, fill * 0.5],
                value: vec![fill + 1.0, fill, -fill],
            };
            qstore.append(e.clone()).unwrap();
            fstore.append(e).unwrap();
        }
        let q = [0.6f32, -0.2, 0.4];
        let quantized = attention_over(&qstore, &[0, 2], &q).unwrap();
        let exact = attention_over(&fstore, &[0, 2], &q).unwrap();
        for (a, b) in quantized.iter().zip(&exact) {
            assert!(a.is_finite());
            assert!((a - b).abs() < 0.05, "{quantized:?} vs {exact:?}");
        }
    }

    #[test]
    fn attention_over_rejects_non_resident_token() {
        let store = KvStore::new(4, 2);
        assert_eq!(
            attention_over(&store, &[7], &[1.0, 0.0]),
            Err(HarnessError::NonResidentToken { token: 7 })
        );
    }

    #[test]
    fn empty_selection_is_deterministic_zero_vector() {
        let mut store = KvStore::new(4, 3);
        store
            .append(KvEntry {
                token_id: 0,
                key: vec![1.0, 0.0, 0.0],
                value: vec![0.5, 0.5, 0.5],
            })
            .unwrap();
        assert_eq!(
            attention_over(&store, &[], &[1.0, 0.0, 0.0]).unwrap(),
            vec![0.0; 3]
        );

        // Through the harness: a policy that selects nothing produces zero
        // outputs (cosine 0 against any nonzero reference), not a crash.
        let w = needle_task(32, 4, 21);
        let mut p = SelectsNothing;
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), 4)).unwrap();
        assert_eq!(r.mean_selected, 0.0);
        assert!(r.output_cosine.abs() < 1e-12, "{r:?}");
    }

    #[test]
    fn answer_steps_distinguishes_salient_free_workloads() {
        // A workload with answer steps: zero recall means retrieval failed.
        let w = needle_task(64, 8, 22);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX)).unwrap();
        assert_eq!(r.answer_steps, w.answer_steps.len());
        assert!(r.answer_steps > 0);

        // A salient-free workload: the salience means are vacuous and
        // `answer_steps == 0` says so.
        use unicaim_attention::workloads::transformer_trace;
        let w = transformer_trace(48, 6, 23);
        let mut p = FullCache::new();
        let r = simulate_decode(&w, &mut p, &SimConfig::new(w.total_tokens(), usize::MAX)).unwrap();
        assert_eq!(r.answer_steps, 0);
        assert_eq!(r.salient_recall, 0.0);
        assert_eq!(r.retrieval_accuracy, 0.0);
    }

    #[test]
    fn streaming_resident_set_is_sinks_plus_window() {
        let w = needle_task(128, 24, 9);
        let mut p = StreamingLlm::new(4);
        let cfg = SimConfig::new(32, 32);
        let _ = simulate_decode(&w, &mut p, &cfg).unwrap();
        // After the run the policy survived; the capacity test above covers
        // the invariant. (Resident tracking is internal to the harness.)
    }
}
