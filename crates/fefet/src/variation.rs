//! Device-to-device variation: seeded Gaussian `V_TH` offsets.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::FeFet;

/// Seeded generator of static device-to-device threshold-voltage offsets.
///
/// The UniCAIM paper assumes Gaussian `V_TH` variation with a standard
/// deviation of 54 mV (Cai et al., DAC 2022) when demonstrating the Fig. 9
/// sense-current linearity. Sampling is deterministic per `(seed, index)` so
/// arrays are reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    sigma_vth: f64,
    seed: u64,
}

impl VariationModel {
    /// Creates a variation model with the given σ (volts) and RNG seed.
    #[must_use]
    pub fn new(sigma_vth: f64, seed: u64) -> Self {
        Self {
            sigma_vth: sigma_vth.max(0.0),
            seed,
        }
    }

    /// A model with no variation: every offset is exactly zero.
    #[must_use]
    pub fn none() -> Self {
        Self {
            sigma_vth: 0.0,
            seed: 0,
        }
    }

    /// The paper's default: σ = 54 mV.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self::new(0.054, seed)
    }

    /// The standard deviation, volts.
    #[must_use]
    pub fn sigma_vth(&self) -> f64 {
        self.sigma_vth
    }

    /// Deterministic offset of the device with the given flat index, volts.
    #[must_use]
    pub fn offset(&self, device_index: u64) -> f64 {
        if self.sigma_vth == 0.0 {
            return 0.0;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ device_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Box-Muller from two uniform draws.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        z * self.sigma_vth
    }

    /// A fresh (erased) device with this model's offset for `device_index`.
    #[must_use]
    pub fn make_device(&self, device_index: u64) -> FeFet {
        FeFet::with_vth_offset(self.offset(device_index))
    }

    /// Samples `n` offsets (device indices `0..n`).
    #[must_use]
    pub fn offsets(&self, n: usize) -> Vec<f64> {
        (0..n as u64).map(|i| self.offset(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let v = VariationModel::paper_default(42);
        assert_eq!(v.offset(7), v.offset(7));
        assert_ne!(v.offset(7), v.offset(8));
    }

    #[test]
    fn different_seeds_differ() {
        let a = VariationModel::paper_default(1);
        let b = VariationModel::paper_default(2);
        assert_ne!(a.offset(0), b.offset(0));
    }

    #[test]
    fn none_is_zero() {
        let v = VariationModel::none();
        for i in 0..100 {
            assert_eq!(v.offset(i), 0.0);
        }
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let v = VariationModel::paper_default(3);
        let xs = v.offsets(20_000);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        assert!(mean.abs() < 0.002, "mean {mean} should be ~0");
        assert!((sd - 0.054).abs() < 0.003, "sd {sd} should be ~54 mV");
    }

    #[test]
    fn negative_sigma_clamped() {
        let v = VariationModel::new(-0.1, 0);
        assert_eq!(v.sigma_vth(), 0.0);
        assert_eq!(v.offset(0), 0.0);
    }
}
