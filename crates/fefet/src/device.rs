//! FeFET state and the model that evolves/reads it.
//!
//! The state of a device is deliberately tiny (16 bytes) so that arrays of
//! hundreds of thousands of devices stay cheap; all parameters live in the
//! shared [`FeFetModel`].

use serde::{Deserialize, Serialize};

use crate::preisach::{switching_fraction, PulseSpec};
use crate::FeFetParams;

/// State of a single FeFET: normalized remanent polarization plus a static
/// device-to-device threshold-voltage offset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeFet {
    /// Normalized remanent polarization in `[-1, 1]`. `+1` = fully switched
    /// toward the low-`V_TH` state, `-1` = fully erased (high `V_TH`).
    polarization: f64,
    /// Static `V_TH` offset of this physical device, volts (process
    /// variation; see [`crate::VariationModel`]).
    vth_offset: f64,
}

impl FeFet {
    /// A fresh, fully erased device with no variation offset.
    #[must_use]
    pub fn fresh() -> Self {
        Self {
            polarization: -1.0,
            vth_offset: 0.0,
        }
    }

    /// A device with the given static `V_TH` offset (volts), fully erased.
    #[must_use]
    pub fn with_vth_offset(vth_offset: f64) -> Self {
        Self {
            polarization: -1.0,
            vth_offset,
        }
    }

    /// Normalized remanent polarization in `[-1, 1]`.
    #[must_use]
    pub fn polarization(&self) -> f64 {
        self.polarization
    }

    /// Static device `V_TH` offset, volts.
    #[must_use]
    pub fn vth_offset(&self) -> f64 {
        self.vth_offset
    }
}

impl Default for FeFet {
    fn default() -> Self {
        Self::fresh()
    }
}

/// The shared behavioral model: maps pulses to polarization updates and
/// polarization to threshold voltage and drain current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeFetModel {
    params: FeFetParams,
}

impl FeFetModel {
    /// Creates a model from validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`FeFetParams::validate`]; use
    /// [`FeFetModel::try_new`] to handle invalid parameters gracefully.
    #[must_use]
    pub fn new(params: FeFetParams) -> Self {
        params.validate().expect("FeFetParams must validate");
        Self { params }
    }

    /// Creates a model, returning an error for invalid parameters.
    ///
    /// # Errors
    ///
    /// Propagates the validation error from [`FeFetParams::validate`].
    pub fn try_new(params: FeFetParams) -> Result<Self, crate::FeFetError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The model's parameter set.
    #[must_use]
    pub fn params(&self) -> &FeFetParams {
        &self.params
    }

    /// Applies a single gate pulse, switching a fraction of the *remaining*
    /// polarization toward the pole matching the pulse's sign. Sub-coercive
    /// pulses (including all reads) leave the state untouched; same-sign
    /// pulses never walk the polarization backwards (nested minor loops).
    pub fn apply_pulse(&self, dev: &mut FeFet, pulse: PulseSpec) {
        let frac = switching_fraction(&self.params, pulse);
        if frac == 0.0 {
            return;
        }
        let pole = pulse.amplitude.signum();
        dev.polarization += frac * (pole - dev.polarization);
        dev.polarization = dev.polarization.clamp(-1.0, 1.0);
    }

    /// Fully erases the device to the high-`V_TH` state (polarization −1)
    /// with a strong negative pulse.
    pub fn erase(&self, dev: &mut FeFet) {
        // A long, strongly over-coercive pulse saturates switching.
        let amp = -(self.params.coercive_voltage + 6.0 * self.params.preisach_width);
        self.apply_pulse(
            dev,
            PulseSpec {
                amplitude: amp,
                width: 1000.0 * self.params.pulse_width,
            },
        );
        // Behavioral idealization: a saturating erase lands exactly at −1.
        dev.polarization = -1.0;
    }

    /// Erases, then programs the device to the target normalized polarization
    /// (clamped to `[-1, 1]`) using a calibrated write pulse whose width is
    /// chosen to switch exactly the needed domain fraction. This is the
    /// paper's single-write-cycle in-place key update (erase + program).
    pub fn program_polarization(&self, dev: &mut FeFet, target: f64) {
        self.erase(dev);
        let target = target.clamp(-1.0, 1.0);
        // Fraction of the (-1 -> +1) distance that must switch.
        let fraction = ((target + 1.0) / 2.0).clamp(0.0, 1.0 - 1e-15);
        if fraction == 0.0 {
            return; // erased state already is -1
        }
        let amplitude = self.params.coercive_voltage + 2.0 * self.params.preisach_width;
        let width = crate::preisach::width_for_fraction(&self.params, amplitude, fraction)
            .expect("amplitude is over-coercive and fraction < 1 by construction");
        self.apply_pulse(dev, PulseSpec { amplitude, width });
        // The kinetics inversion is exact up to floating point; snap to the
        // target so multilevel grids are noiseless (variation is modeled
        // separately via vth offsets).
        dev.polarization = target;
    }

    /// Overrides the stored polarization without a switching event
    /// (clamped to `[-1, 1]`). Used by the reliability models, where state
    /// change is thermal relaxation rather than field-driven switching.
    pub fn set_polarization(&self, dev: &mut FeFet, polarization: f64) {
        dev.polarization = polarization.clamp(-1.0, 1.0);
    }

    /// Threshold voltage of the device: linear map of polarization across the
    /// memory window, plus the device's static variation offset.
    #[must_use]
    pub fn vth(&self, dev: &FeFet) -> f64 {
        let p = &self.params;
        p.vth_mid() - 0.5 * p.memory_window() * dev.polarization + dev.vth_offset
    }

    /// Drain current at the given gate and drain-source voltage, amps.
    ///
    /// EKV-style all-region expression:
    /// `I = 2·n·β·U_T² · [ln²(1+e^{v_ov/(2nU_T)}) − ln²(1+e^{(v_ov−n·v_ds)/(2nU_T)})] + I_leak`.
    /// Smooth and strictly increasing in `v_g`, strictly decreasing in
    /// `V_TH`, and linear in `v_ov` for small `v_ds` (triode) — the property
    /// the current-domain CIM linearity (Fig. 9b) relies on.
    #[must_use]
    pub fn drain_current(&self, dev: &FeFet, v_g: f64, v_ds: f64) -> f64 {
        self.drain_current_at_vth(self.vth(dev), v_g, v_ds)
    }

    /// [`FeFetModel::drain_current`] for an explicit threshold voltage.
    /// Useful for fast array-level paths that cache `V_TH` values.
    #[must_use]
    pub fn drain_current_at_vth(&self, vth: f64, v_g: f64, v_ds: f64) -> f64 {
        let p = &self.params;
        let n = p.slope_factor;
        let ut = p.thermal_voltage;
        let vov = v_g - vth;
        let half = 2.0 * n * ut;
        let lf = ln_one_plus_exp(vov / half);
        let lr = ln_one_plus_exp((vov - n * v_ds) / half);
        let i = 2.0 * n * p.beta * ut * ut * (lf * lf - lr * lr);
        i.max(0.0) + p.leakage
    }

    /// On/off current ratio at the default read condition.
    #[must_use]
    pub fn on_off_ratio(&self) -> f64 {
        let p = &self.params;
        let on = self.drain_current_at_vth(p.vth_low, p.read_voltage, p.vds_read);
        let off = self.drain_current_at_vth(p.vth_high, 0.0, p.vds_read);
        on / off
    }
}

/// Numerically stable `ln(1 + e^x)`.
fn ln_one_plus_exp(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FeFetModel {
        FeFetModel::new(FeFetParams::default())
    }

    #[test]
    fn fresh_device_is_erased() {
        let m = model();
        let dev = FeFet::fresh();
        assert_eq!(dev.polarization(), -1.0);
        assert!((m.vth(&dev) - m.params().vth_high).abs() < 1e-12);
    }

    #[test]
    fn program_reaches_target_vth() {
        let m = model();
        let mut dev = FeFet::fresh();
        for target in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            m.program_polarization(&mut dev, target);
            let expect = m.params().vth_mid() - 0.5 * m.params().memory_window() * target;
            assert!(
                (m.vth(&dev) - expect).abs() < 1e-9,
                "target {target}: vth {} != {expect}",
                m.vth(&dev)
            );
        }
    }

    #[test]
    fn read_is_non_destructive() {
        let m = model();
        let mut dev = FeFet::fresh();
        m.program_polarization(&mut dev, 0.37);
        let before = dev.polarization();
        for _ in 0..1000 {
            m.apply_pulse(
                &mut dev,
                PulseSpec {
                    amplitude: m.params().read_voltage,
                    width: 1e-6,
                },
            );
        }
        assert_eq!(
            dev.polarization(),
            before,
            "reads must never move polarization"
        );
    }

    #[test]
    fn partial_pulses_accumulate_gradually() {
        let m = model();
        let mut dev = FeFet::fresh();
        // Short, barely over-coercive pulses should move polarization in
        // several visible steps rather than all at once.
        let pulse = PulseSpec {
            amplitude: 2.9,
            width: 5e-9,
        };
        let mut last = dev.polarization();
        let mut steps = 0;
        for _ in 0..50 {
            m.apply_pulse(&mut dev, pulse);
            let now = dev.polarization();
            if now > last + 1e-6 {
                steps += 1;
            }
            last = now;
        }
        assert!(
            steps >= 5,
            "expected gradual multi-step switching, saw {steps} steps"
        );
        assert!(dev.polarization() <= 1.0);
        assert!(
            dev.polarization() > -1.0,
            "pulses must have switched something"
        );
    }

    #[test]
    fn current_monotone_in_gate_voltage() {
        let m = model();
        let mut dev = FeFet::fresh();
        m.program_polarization(&mut dev, 0.0);
        let mut last = 0.0;
        for i in 0..200 {
            let vg = -0.5 + 0.015 * f64::from(i);
            let i_d = m.drain_current(&dev, vg, m.params().vds_read);
            assert!(i_d >= last, "drain current must be monotone in v_g");
            last = i_d;
        }
    }

    #[test]
    fn current_monotone_in_vth() {
        let m = model();
        let p = m.params();
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let vth = p.vth_low + p.memory_window() * f64::from(i) / 99.0;
            let i_d = m.drain_current_at_vth(vth, p.read_voltage, p.vds_read);
            assert!(i_d <= last, "drain current must decrease with vth");
            last = i_d;
        }
    }

    #[test]
    fn triode_current_is_nearly_linear_in_overdrive() {
        let m = model();
        let p = m.params();
        // Compare currents at equally spaced vth levels: successive
        // differences should be nearly equal well above threshold.
        let i0 = m.drain_current_at_vth(p.vth_low, p.read_voltage, p.vds_read);
        let i1 = m.drain_current_at_vth(p.vth_low + 0.3, p.read_voltage, p.vds_read);
        let i2 = m.drain_current_at_vth(p.vth_low + 0.6, p.read_voltage, p.vds_read);
        let d1 = i0 - i1;
        let d2 = i1 - i2;
        let nonlinearity = ((d1 - d2) / d1).abs();
        assert!(
            nonlinearity < 0.05,
            "triode nonlinearity {nonlinearity} too large"
        );
    }

    #[test]
    fn high_on_off_ratio() {
        let m = model();
        assert!(m.on_off_ratio() > 1e4, "on/off ratio {}", m.on_off_ratio());
    }

    #[test]
    fn variation_offset_shifts_vth() {
        let m = model();
        let dev = FeFet::with_vth_offset(0.054);
        assert!((m.vth(&dev) - (m.params().vth_high + 0.054)).abs() < 1e-12);
    }

    #[test]
    fn try_new_rejects_bad_params() {
        let bad = FeFetParams {
            beta: -1.0,
            ..FeFetParams::default()
        };
        assert!(FeFetModel::try_new(bad).is_err());
    }
}
