//! Behavioral ferroelectric FET (FeFET) device model.
//!
//! This crate provides the device-physics substrate of the UniCAIM
//! reproduction. The paper evaluates UniCAIM with HSPICE using a 45 nm BSIM
//! MOSFET model and the Preisach ferroelectric switching model of Ni et al.
//! (VLSI 2018). Here we implement a *behavioral* equivalent that preserves
//! the properties the architecture depends on:
//!
//! * **Multilevel, non-volatile threshold-voltage programming** — applying a
//!   program pulse partially switches the ferroelectric polarization, which
//!   linearly shifts the threshold voltage `V_TH` inside a memory window
//!   (Fig. 2b/2c of the paper).
//! * **Non-destructive read** — read voltages below the coercive voltage do
//!   not disturb the stored polarization.
//! * **Smooth, monotone I–V readout** — an EKV-style all-region MOSFET
//!   equation gives subthreshold exponential, triode-linear and saturation
//!   behaviour with one smooth expression, so sense-line currents are
//!   monotone in the gate overdrive (what the CAM discharge race and the
//!   current-domain linearity of Fig. 9 rely on).
//! * **Device-to-device variation** — Gaussian `V_TH` offsets with the
//!   σ = 54 mV the paper adopts from Cai et al. (DAC 2022).
//!
//! # Quickstart
//!
//! ```
//! use unicaim_fefet::{FeFet, FeFetModel, FeFetParams};
//!
//! let model = FeFetModel::new(FeFetParams::default());
//! let mut dev = FeFet::fresh();
//! // Program the strongest "low-VTH" state and read the channel current.
//! model.erase(&mut dev);
//! model.program_polarization(&mut dev, 1.0);
//! let i_on = model.drain_current(&dev, model.params().read_voltage, model.params().vds_read);
//! let i_off = model.drain_current(&dev, 0.0, model.params().vds_read);
//! assert!(i_on / i_off > 1e3, "FeFET must have a high on/off ratio");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod multilevel;
mod params;
mod preisach;
mod reliability;
mod sweep;
mod variation;

pub use device::{FeFet, FeFetModel};
pub use multilevel::{LevelProgrammer, VthGrid};
pub use params::FeFetParams;
pub use preisach::{saturation_polarization, switching_fraction, width_for_fraction, PulseSpec};
pub use reliability::{EnduranceModel, RetentionModel};
pub use sweep::{id_vg_sweep, pv_loop, IdVgCurve, IdVgPoint, PvLoop, PvPoint};
pub use variation::VariationModel;

/// Errors reported by the FeFET device layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FeFetError {
    /// A parameter failed validation (name and human-readable reason).
    InvalidParameter {
        /// The name of the offending parameter.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A requested level index was out of range for the level grid.
    LevelOutOfRange {
        /// The requested level index.
        level: usize,
        /// The number of levels in the grid.
        n_levels: usize,
    },
}

impl core::fmt::Display for FeFetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FeFetError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            FeFetError::LevelOutOfRange { level, n_levels } => {
                write!(f, "level {level} out of range for a {n_levels}-level grid")
            }
        }
    }
}

impl std::error::Error for FeFetError {}
