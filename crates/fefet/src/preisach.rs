//! Ferroelectric switching kinetics (nucleation-limited-switching flavor of
//! the Preisach picture).
//!
//! The full Preisach model integrates a distribution of elementary square
//! hysteresis operators. For the UniCAIM architecture only three
//! consequences matter:
//!
//! 1. pulses drive the polarization *toward the pole of their sign* and never
//!    away from it (minor loops are nested — real hysteresis);
//! 2. a finite pulse switches only a fraction of the remaining
//!    un-switched domains, with a rate that accelerates exponentially in the
//!    overdrive above the coercive voltage (nucleation-limited switching) —
//!    this is what yields gradually modulated multilevel `V_TH` (Fig. 2b/2c);
//! 3. sub-coercive pulses (all reads) switch exactly nothing.

use serde::{Deserialize, Serialize};

use crate::FeFetParams;

/// A gate program pulse: signed amplitude and duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseSpec {
    /// Pulse amplitude, volts. Positive pulses drive the polarization toward
    /// +1 (low `V_TH`); negative pulses toward −1 (high `V_TH`).
    pub amplitude: f64,
    /// Pulse width, seconds.
    pub width: f64,
}

impl PulseSpec {
    /// Creates a pulse with the model's default width.
    #[must_use]
    pub fn with_default_width(amplitude: f64, params: &FeFetParams) -> Self {
        Self {
            amplitude,
            width: params.pulse_width,
        }
    }
}

/// Fraction of the *remaining* polarization distance a single pulse switches.
///
/// Nucleation-limited switching: `1 − exp(−t_pulse/τ(v))` with
/// `τ(v) = τ₀ · exp(−(|v| − V_c)/v₀)`. Sub-coercive pulses return exactly
/// `0.0` (non-destructive read guarantee).
#[must_use]
pub fn switching_fraction(params: &FeFetParams, pulse: PulseSpec) -> f64 {
    let overdrive = pulse.amplitude.abs() - params.coercive_voltage;
    if overdrive <= 0.0 || pulse.width <= 0.0 {
        return 0.0;
    }
    let tau = params.tau0 * (-overdrive / params.switching_voltage_scale).exp();
    1.0 - (-pulse.width / tau).exp()
}

/// Polarization reached from the **opposite** fully poled state by a single
/// default-width pulse of the given amplitude — the quasi-static switching
/// branch of the P–V loop (Fig. 2b).
///
/// For a positive amplitude the device starts at −1 and lands at
/// `2·s(v) − 1`; sub-coercive amplitudes land back at ∓1 (nothing switches).
/// Odd in the amplitude by construction.
#[must_use]
pub fn saturation_polarization(params: &FeFetParams, amplitude: f64) -> f64 {
    if amplitude == 0.0 {
        return 0.0;
    }
    let s = switching_fraction(
        params,
        PulseSpec::with_default_width(amplitude.abs(), params),
    );
    amplitude.signum() * (2.0 * s - 1.0)
}

/// Pulse width (seconds) needed to switch the given fraction of the remaining
/// polarization at the given amplitude.
///
/// Inverse of [`switching_fraction`] in the width argument. Returns `None`
/// for sub-coercive amplitudes (no width suffices) or for `fraction`
/// outside `[0, 1)`.
#[must_use]
pub fn width_for_fraction(params: &FeFetParams, amplitude: f64, fraction: f64) -> Option<f64> {
    let overdrive = amplitude.abs() - params.coercive_voltage;
    if overdrive <= 0.0 || !(0.0..1.0).contains(&fraction) {
        return None;
    }
    let tau = params.tau0 * (-overdrive / params.switching_voltage_scale).exp();
    Some(-tau * (1.0 - fraction).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> FeFetParams {
        FeFetParams::default()
    }

    #[test]
    fn saturation_is_odd() {
        let params = p();
        for v in [0.5, 2.6, 3.0, 3.5, 4.0, 6.0] {
            let pos = saturation_polarization(&params, v);
            let neg = saturation_polarization(&params, -v);
            assert!((pos + neg).abs() < 1e-12, "odd symmetry violated at {v}");
        }
    }

    #[test]
    fn saturation_monotone_and_bounded() {
        let params = p();
        let mut last = -1.0;
        for i in 0..200 {
            let v = 0.02 * f64::from(i) + 0.01;
            let s = saturation_polarization(&params, v);
            assert!(s >= last - 1e-12, "branch curve must be non-decreasing");
            assert!((-1.0..=1.0).contains(&s));
            last = s;
        }
        assert!(
            last > 0.95,
            "strong pulses must nearly fully switch, got {last}"
        );
    }

    #[test]
    fn subcoercive_pulse_switches_nothing() {
        let params = p();
        assert_eq!(saturation_polarization(&params, 1.0), -1.0);
        let frac = switching_fraction(
            &params,
            PulseSpec {
                amplitude: params.read_voltage,
                width: 1.0,
            },
        );
        assert_eq!(frac, 0.0, "read voltage must never switch polarization");
    }

    #[test]
    fn switching_fraction_increases_with_amplitude_and_width() {
        let params = p();
        let f1 = switching_fraction(
            &params,
            PulseSpec {
                amplitude: 2.8,
                width: 100e-9,
            },
        );
        let f2 = switching_fraction(
            &params,
            PulseSpec {
                amplitude: 3.2,
                width: 100e-9,
            },
        );
        let f3 = switching_fraction(
            &params,
            PulseSpec {
                amplitude: 2.8,
                width: 400e-9,
            },
        );
        assert!(f2 > f1, "stronger pulses switch more");
        assert!(f3 > f1, "longer pulses switch more");
        assert!(f1 > 0.0 && f2 <= 1.0 && f3 <= 1.0);
    }

    #[test]
    fn width_for_fraction_inverts_kinetics() {
        let params = p();
        for fraction in [0.01, 0.25, 0.5, 0.9, 0.999] {
            let w = width_for_fraction(&params, 3.0, fraction).expect("over-coercive");
            let got = switching_fraction(
                &params,
                PulseSpec {
                    amplitude: 3.0,
                    width: w,
                },
            );
            assert!(
                (got - fraction).abs() < 1e-9,
                "inversion failed: fraction {fraction}, width {w}, got {got}"
            );
        }
    }

    #[test]
    fn width_for_fraction_rejects_bad_inputs() {
        let params = p();
        assert!(
            width_for_fraction(&params, 1.0, 0.5).is_none(),
            "sub-coercive"
        );
        assert!(
            width_for_fraction(&params, 3.0, 1.0).is_none(),
            "fraction 1 needs infinite width"
        );
        assert!(width_for_fraction(&params, 3.0, -0.1).is_none());
    }
}
