//! Reliability effects: polarization retention loss and program/erase
//! endurance degradation.
//!
//! The UniCAIM architecture leans on FeFET non-volatility (keys persist
//! between decode steps without refresh) and on frequent in-place key
//! rewrites (one row per decode step). This module provides behavioral
//! models of the two corresponding wear-out axes so their architectural
//! impact can be ablated:
//!
//! * **Retention** — remanent polarization relaxes toward zero with a
//!   stretched-exponential law `P(t) = P₀·exp(−(t/τ)^β)`; HfO₂ FeFETs
//!   typically extrapolate to 10-year retention, so decode-scale times
//!   (ns–ms) lose nothing.
//! * **Endurance** — repeated program/erase cycling degrades the memory
//!   window logarithmically: `MW(N) = MW₀·(1 − α·log₁₀(1 + N/N₀))`.

use serde::{Deserialize, Serialize};

use crate::{FeFet, FeFetModel};

/// Retention model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Relaxation time constant, seconds (default ≈10 years).
    pub tau: f64,
    /// Stretching exponent β in `exp(−(t/τ)^β)`.
    pub beta: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self {
            tau: 3.15e8,
            beta: 0.5,
        }
    }
}

impl RetentionModel {
    /// Fraction of polarization surviving after `seconds` of storage.
    #[must_use]
    pub fn survival(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 1.0;
        }
        (-(seconds / self.tau).powf(self.beta)).exp()
    }

    /// Relaxes a device's polarization in place.
    pub fn age(&self, model: &FeFetModel, dev: &mut FeFet, seconds: f64) {
        let survive = self.survival(seconds);
        let target = dev.polarization() * survive;
        // Reprogram the state directly: retention loss is not a field-driven
        // switching event, so bypass the pulse path.
        model.set_polarization(dev, target);
    }
}

/// Endurance model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Window-narrowing coefficient α per decade of cycles.
    pub alpha: f64,
    /// Cycle count where degradation onsets.
    pub n0: f64,
    /// Cycles at which the device is considered failed (window below the
    /// sensing margin).
    pub n_fail: u64,
}

impl Default for EnduranceModel {
    fn default() -> Self {
        // HfO2 FeFET-class: ~1e10 cycle endurance, mild narrowing onset
        // beyond ~1e6 cycles.
        Self {
            alpha: 0.04,
            n0: 1e6,
            n_fail: 10_000_000_000,
        }
    }
}

impl EnduranceModel {
    /// Remaining memory-window fraction after `cycles` program/erase
    /// cycles (clamped to ≥ 0).
    #[must_use]
    pub fn window_fraction(&self, cycles: u64) -> f64 {
        let decades = (1.0 + cycles as f64 / self.n0).log10();
        (1.0 - self.alpha * decades).max(0.0)
    }

    /// Whether the device still meets its sensing margin.
    #[must_use]
    pub fn alive(&self, cycles: u64) -> bool {
        cycles < self.n_fail
    }

    /// Cycles consumed by an array that rewrites one row (of `cells_per_row`
    /// cells, 2 FeFETs each) per decode step, expressed as per-device
    /// cycles after `steps` decode steps with `rows` rows (uniform wear).
    #[must_use]
    pub fn per_device_cycles(&self, steps: u64, rows: u64) -> u64 {
        if rows == 0 {
            return 0;
        }
        steps.div_ceil(rows)
    }

    /// Decode steps until the most-worn device fails, assuming one row
    /// write per step spread uniformly over `rows` rows (the paper's
    /// in-place eviction naturally wear-levels across the reserved rows).
    #[must_use]
    pub fn steps_until_failure(&self, rows: u64) -> u64 {
        self.n_fail.saturating_mul(rows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeFetParams;

    #[test]
    fn retention_is_negligible_at_decode_timescales() {
        let r = RetentionModel::default();
        // A full decode of 1M steps at 100 ns/step = 0.1 s.
        let s = r.survival(0.1);
        assert!(
            s > 0.999,
            "decode-scale retention loss must be negligible, got {s}"
        );
    }

    #[test]
    fn retention_decays_toward_zero_at_year_scale() {
        let r = RetentionModel::default();
        let ten_years = 3.15e8;
        let s = r.survival(ten_years);
        assert!(
            s < 0.5 && s > 0.1,
            "10-year survival should be partial, got {s}"
        );
        assert!(r.survival(100.0 * ten_years) < s);
        assert_eq!(r.survival(0.0), 1.0);
    }

    #[test]
    fn aging_relaxes_polarization_in_place() {
        let model = FeFetModel::new(FeFetParams::default());
        let retention = RetentionModel::default();
        let mut dev = crate::FeFet::fresh();
        model.program_polarization(&mut dev, 0.8);
        retention.age(&model, &mut dev, 3.15e8);
        assert!(dev.polarization() < 0.8 && dev.polarization() > 0.0);
    }

    #[test]
    fn endurance_window_narrows_logarithmically() {
        let e = EnduranceModel::default();
        assert!((e.window_fraction(0) - 1.0).abs() < 1e-12);
        let w6 = e.window_fraction(1_000_000);
        let w9 = e.window_fraction(1_000_000_000);
        assert!(w9 < w6 && w6 < 1.0);
        assert!(
            w9 > 0.8,
            "1e9 cycles should keep most of the window, got {w9}"
        );
    }

    #[test]
    fn in_place_eviction_wear_levels() {
        let e = EnduranceModel::default();
        // 64 reserved rows, one write per step: each row is rewritten every
        // 64 steps, so endurance translates to 64x more decode steps.
        assert_eq!(e.per_device_cycles(6400, 64), 100);
        assert_eq!(e.steps_until_failure(64), 64 * e.n_fail);
    }

    #[test]
    fn failure_threshold() {
        let e = EnduranceModel::default();
        assert!(e.alive(1_000_000));
        assert!(!e.alive(e.n_fail));
    }
}
