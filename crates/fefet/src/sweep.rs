//! Characterization sweeps reproducing the device plots of paper Fig. 2.

use serde::{Deserialize, Serialize};

use crate::preisach::PulseSpec;
use crate::{FeFet, FeFetModel};

/// One point of a polarization–voltage loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvPoint {
    /// Applied gate voltage, volts.
    pub voltage: f64,
    /// Resulting normalized remanent polarization.
    pub polarization: f64,
}

/// A quasi-static polarization–voltage hysteresis loop (paper Fig. 2b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvLoop {
    /// Peak sweep amplitude, volts.
    pub amplitude: f64,
    /// Loop points in sweep order (up then down).
    pub points: Vec<PvPoint>,
}

impl PvLoop {
    /// Maximum polarization reached on this loop.
    #[must_use]
    pub fn p_max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.polarization)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum polarization reached on this loop.
    #[must_use]
    pub fn p_min(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.polarization)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Sweeps a device around a voltage loop of the given peak amplitude,
/// recording the remanent polarization after each step (one default-width
/// pulse per step). One unrecorded conditioning cycle is run first so the
/// recorded loop is the stabilized one; multiple amplitudes then give the
/// nested minor loops of Fig. 2b that demonstrate multilevel polarization.
#[must_use]
pub fn pv_loop(model: &FeFetModel, amplitude: f64, steps_per_branch: usize) -> PvLoop {
    let steps = steps_per_branch.max(2);
    let mut dev = FeFet::fresh();
    let width = model.params().pulse_width; // one default-width pulse per step
    let sweep = |from: f64, to: f64, dev: &mut FeFet, points: &mut Vec<PvPoint>| {
        for i in 0..steps {
            let v = from + (to - from) * i as f64 / (steps - 1) as f64;
            model.apply_pulse(
                dev,
                PulseSpec {
                    amplitude: v,
                    width,
                },
            );
            points.push(PvPoint {
                voltage: v,
                polarization: dev.polarization(),
            });
        }
    };
    // Conditioning cycle (discarded).
    let mut scratch = Vec::new();
    sweep(-amplitude, amplitude, &mut dev, &mut scratch);
    sweep(amplitude, -amplitude, &mut dev, &mut scratch);
    // Recorded, stabilized cycle.
    let mut points = Vec::with_capacity(2 * steps);
    sweep(-amplitude, amplitude, &mut dev, &mut points);
    sweep(amplitude, -amplitude, &mut dev, &mut points);
    PvLoop { amplitude, points }
}

/// One point of an I_D–V_G transfer curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdVgPoint {
    /// Gate voltage, volts.
    pub v_g: f64,
    /// Drain current, amps.
    pub i_d: f64,
}

/// An I_D–V_G transfer curve for one programmed state (paper Fig. 2c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdVgCurve {
    /// Normalized polarization the device was programmed to.
    pub polarization: f64,
    /// Threshold voltage of the programmed state, volts.
    pub vth: f64,
    /// Transfer-curve points in increasing `v_g` order.
    pub points: Vec<IdVgPoint>,
}

/// Programs a device to each polarization in `levels` and sweeps `v_g` over
/// `[vg_min, vg_max]`, producing the gradually modulated transfer-curve
/// family of Fig. 2c.
#[must_use]
pub fn id_vg_sweep(
    model: &FeFetModel,
    levels: &[f64],
    vg_min: f64,
    vg_max: f64,
    n_points: usize,
) -> Vec<IdVgCurve> {
    let n = n_points.max(2);
    levels
        .iter()
        .map(|&pol| {
            let mut dev = FeFet::fresh();
            model.program_polarization(&mut dev, pol);
            let vth = model.vth(&dev);
            let points = (0..n)
                .map(|i| {
                    let v_g = vg_min + (vg_max - vg_min) * i as f64 / (n - 1) as f64;
                    IdVgPoint {
                        v_g,
                        i_d: model.drain_current(&dev, v_g, model.params().vds_read),
                    }
                })
                .collect();
            IdVgCurve {
                polarization: pol,
                vth,
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preisach::saturation_polarization;
    use crate::FeFetParams;

    fn model() -> FeFetModel {
        FeFetModel::new(FeFetParams::default())
    }

    #[test]
    fn full_loop_shows_hysteresis() {
        let m = model();
        let loop_ = pv_loop(&m, 4.0, 60);
        assert!(loop_.p_max() > 0.8, "p_max {}", loop_.p_max());
        assert!(loop_.p_min() < -0.8, "p_min {}", loop_.p_min());
        // Hysteresis: polarization at V=0 differs between the two branches.
        let up = loop_
            .points
            .iter()
            .take(60)
            .min_by(|a, b| (a.voltage.abs()).partial_cmp(&b.voltage.abs()).unwrap());
        let down = loop_
            .points
            .iter()
            .skip(60)
            .min_by(|a, b| (a.voltage.abs()).partial_cmp(&b.voltage.abs()).unwrap());
        let (up, down) = (up.unwrap(), down.unwrap());
        assert!(
            (up.polarization - down.polarization).abs() > 0.5,
            "no hysteresis: up branch {} vs down branch {}",
            up.polarization,
            down.polarization
        );
    }

    #[test]
    fn minor_loops_are_nested() {
        let m = model();
        let small = pv_loop(&m, 3.0, 60);
        let large = pv_loop(&m, 4.5, 60);
        assert!(small.p_max() < large.p_max());
        assert!(small.p_min() > large.p_min());
        // Sequential sweep pulses accumulate at least as much switching as a
        // single branch pulse of the peak amplitude.
        assert!(large.p_max() >= saturation_polarization(m.params(), 4.5) - 0.05);
    }

    #[test]
    fn idvg_family_is_ordered() {
        let m = model();
        let curves = id_vg_sweep(&m, &[-1.0, -0.5, 0.0, 0.5, 1.0], 0.0, 1.6, 40);
        assert_eq!(curves.len(), 5);
        // At a fixed mid-range gate voltage, current must increase with
        // programmed polarization (lower vth conducts more).
        let idx = 30;
        let mut last = 0.0;
        for c in &curves {
            let i = c.points[idx].i_d;
            assert!(i >= last, "family must be ordered by polarization");
            last = i;
        }
    }

    #[test]
    fn idvg_vth_shift_spans_memory_window() {
        let m = model();
        let curves = id_vg_sweep(&m, &[-1.0, 1.0], 0.0, 1.6, 10);
        let shift = curves[0].vth - curves[1].vth;
        assert!((shift - m.params().memory_window()).abs() < 1e-9);
    }
}
