//! Multilevel `V_TH` programming: evenly spaced level grids and the
//! programmer that writes them.
//!
//! UniCAIM's 3-bit cell stores signed keys {−1, −0.5, 0, +0.5, +1} as
//! complementary `(V_TH1, V_TH1b)` pairs on the two FeFETs of a cell
//! (paper Fig. 6a). This module provides the level grid shared by both.

use serde::{Deserialize, Serialize};

use crate::{FeFet, FeFetError, FeFetModel};

/// An evenly spaced grid of `n_levels` threshold voltages spanning the
/// memory window, used for multilevel storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VthGrid {
    levels: Vec<f64>,
}

impl VthGrid {
    /// Builds an `n_levels`-point grid spanning `[vth_low, vth_high]`.
    ///
    /// Level `0` is the *lowest* `V_TH` (strongest conduction), level
    /// `n_levels − 1` the highest.
    ///
    /// # Errors
    ///
    /// Returns [`FeFetError::InvalidParameter`] if `n_levels < 2`.
    pub fn new(model: &FeFetModel, n_levels: usize) -> Result<Self, FeFetError> {
        if n_levels < 2 {
            return Err(FeFetError::InvalidParameter {
                name: "n_levels",
                reason: format!("need at least 2 levels, got {n_levels}"),
            });
        }
        let p = model.params();
        let step = p.memory_window() / (n_levels as f64 - 1.0);
        let levels = (0..n_levels).map(|i| p.vth_low + step * i as f64).collect();
        Ok(Self { levels })
    }

    /// The number of levels.
    #[must_use]
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Threshold voltage of the given level, volts.
    ///
    /// # Errors
    ///
    /// Returns [`FeFetError::LevelOutOfRange`] for an invalid index.
    pub fn vth_of(&self, level: usize) -> Result<f64, FeFetError> {
        self.levels
            .get(level)
            .copied()
            .ok_or(FeFetError::LevelOutOfRange {
                level,
                n_levels: self.levels.len(),
            })
    }

    /// All level voltages, lowest first.
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Index of the grid level nearest to the given threshold voltage.
    #[must_use]
    pub fn nearest_level(&self, vth: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (l - vth).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// Programs devices onto a [`VthGrid`] via calibrated erase+write pulses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelProgrammer {
    grid: VthGrid,
}

impl LevelProgrammer {
    /// Creates a programmer for the given grid.
    #[must_use]
    pub fn new(grid: VthGrid) -> Self {
        Self { grid }
    }

    /// The underlying level grid.
    #[must_use]
    pub fn grid(&self) -> &VthGrid {
        &self.grid
    }

    /// Programs `dev` to the grid level `level`.
    ///
    /// The device's *intrinsic* `V_TH` (without its variation offset) lands
    /// on the grid point; real read currents then see the offset, exactly as
    /// in hardware.
    ///
    /// # Errors
    ///
    /// Returns [`FeFetError::LevelOutOfRange`] for an invalid index.
    pub fn program(
        &self,
        model: &FeFetModel,
        dev: &mut FeFet,
        level: usize,
    ) -> Result<(), FeFetError> {
        let vth = self.grid.vth_of(level)?;
        let p = model.params();
        // Invert the linear polarization->vth map.
        let target_p = (p.vth_mid() - vth) / (0.5 * p.memory_window());
        model.program_polarization(dev, target_p);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeFetParams;

    fn model() -> FeFetModel {
        FeFetModel::new(FeFetParams::default())
    }

    #[test]
    fn grid_spans_window_evenly() {
        let m = model();
        let g = VthGrid::new(&m, 5).unwrap();
        let l = g.levels();
        assert_eq!(l.len(), 5);
        assert!((l[0] - 0.2).abs() < 1e-12);
        assert!((l[4] - 1.4).abs() < 1e-12);
        let step = l[1] - l[0];
        for w in l.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-12, "grid must be even");
        }
    }

    #[test]
    fn grid_rejects_single_level() {
        let m = model();
        assert!(VthGrid::new(&m, 1).is_err());
    }

    #[test]
    fn programmer_lands_on_grid() {
        let m = model();
        let g = VthGrid::new(&m, 5).unwrap();
        let prog = LevelProgrammer::new(g.clone());
        let mut dev = FeFet::fresh();
        for level in 0..5 {
            prog.program(&m, &mut dev, level).unwrap();
            let vth = m.vth(&dev);
            let want = g.vth_of(level).unwrap();
            assert!(
                (vth - want).abs() < 1e-9,
                "level {level}: vth {vth} want {want}"
            );
        }
    }

    #[test]
    fn programmer_rejects_out_of_range() {
        let m = model();
        let g = VthGrid::new(&m, 5).unwrap();
        let prog = LevelProgrammer::new(g);
        let mut dev = FeFet::fresh();
        assert!(matches!(
            prog.program(&m, &mut dev, 5),
            Err(FeFetError::LevelOutOfRange {
                level: 5,
                n_levels: 5
            })
        ));
    }

    #[test]
    fn nearest_level_roundtrips() {
        let m = model();
        let g = VthGrid::new(&m, 8).unwrap();
        for level in 0..8 {
            let vth = g.vth_of(level).unwrap();
            assert_eq!(g.nearest_level(vth + 0.01), level);
            assert_eq!(g.nearest_level(vth - 0.01), level);
        }
    }

    #[test]
    fn programmed_levels_have_ordered_read_currents() {
        let m = model();
        let g = VthGrid::new(&m, 5).unwrap();
        let prog = LevelProgrammer::new(g);
        let mut dev = FeFet::fresh();
        let p = *m.params();
        let mut last = f64::INFINITY;
        for level in 0..5 {
            prog.program(&m, &mut dev, level).unwrap();
            let i = m.drain_current(&dev, p.read_voltage, p.vds_read);
            assert!(i < last, "higher level (higher vth) must conduct less");
            last = i;
        }
    }
}
