//! Device parameter set for the behavioral FeFET model.

use serde::{Deserialize, Serialize};

use crate::FeFetError;

/// Strict positivity check for physical parameters. `NaN` compares false,
/// so non-finite garbage fails validation along with zeros and negatives.
fn is_strictly_positive(v: f64) -> bool {
    v > 0.0
}

/// Parameters of the behavioral FeFET model.
///
/// Defaults describe a 45 nm-class HfO₂ FeFET consistent with the operating
/// points in the UniCAIM paper: a ~1.2 V memory window, a coercive voltage
/// around 2.5 V (so reads far below it are non-destructive), and µA-scale on
/// currents. Every field is public because this is a passive parameter
/// record; [`FeFetParams::validate`] checks cross-field consistency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeFetParams {
    /// Lowest achievable threshold voltage (fully "program" polarized), volts.
    pub vth_low: f64,
    /// Highest achievable threshold voltage (fully "erase" polarized), volts.
    pub vth_high: f64,
    /// Coercive voltage of the ferroelectric layer, volts. Gate pulses with
    /// magnitude below this leave the polarization essentially unchanged.
    pub coercive_voltage: f64,
    /// Width of the Preisach saturation curve (how gradually the saturated
    /// polarization approaches ±1 around the coercive voltage), volts.
    pub preisach_width: f64,
    /// Nucleation time constant at the coercive voltage, seconds. Together
    /// with `switching_voltage_scale` it sets how much of the remaining
    /// polarization a pulse switches. The default is much longer than the
    /// default pulse width so that the switching branch rises gradually over
    /// ~1 V above the coercive voltage (multilevel programming window).
    pub tau0: f64,
    /// Voltage scale of switching-time acceleration, volts. Larger overdrive
    /// above the coercive voltage exponentially speeds up switching.
    pub switching_voltage_scale: f64,
    /// Default program pulse width, seconds.
    pub pulse_width: f64,
    /// Transconductance factor β = µ·C_ox·W/L of the underlying MOSFET, A/V².
    pub beta: f64,
    /// Subthreshold slope factor (n ≳ 1).
    pub slope_factor: f64,
    /// Thermal voltage kT/q, volts.
    pub thermal_voltage: f64,
    /// Gate voltage used for non-destructive reads, volts.
    pub read_voltage: f64,
    /// Drain–source voltage applied during CIM reads, volts. Small enough to
    /// keep the device in the triode region where current is linear in the
    /// gate overdrive.
    pub vds_read: f64,
    /// Leakage floor added to every drain current, amps.
    pub leakage: f64,
    /// Standard deviation of device-to-device threshold-voltage variation,
    /// volts. The paper adopts 54 mV.
    pub sigma_vth: f64,
}

impl Default for FeFetParams {
    fn default() -> Self {
        Self {
            vth_low: 0.2,
            vth_high: 1.4,
            coercive_voltage: 2.5,
            preisach_width: 0.6,
            tau0: 10e-6,
            switching_voltage_scale: 0.25,
            pulse_width: 100e-9,
            beta: 120e-6,
            slope_factor: 1.25,
            thermal_voltage: 0.02585,
            // Read at the top of the memory window: the strongest stored
            // "+1" key then sits exactly at zero overdrive, which is what
            // makes the per-cell current affine in (key x query); see
            // `unicaim-core::cell`.
            read_voltage: 1.4,
            vds_read: 0.1,
            leakage: 1e-12,
            sigma_vth: 0.054,
        }
    }
}

impl FeFetParams {
    /// Memory window: the full programmable `V_TH` range, volts.
    #[must_use]
    pub fn memory_window(&self) -> f64 {
        self.vth_high - self.vth_low
    }

    /// Midpoint of the memory window, volts. A device programmed to zero net
    /// polarization sits here.
    #[must_use]
    pub fn vth_mid(&self) -> f64 {
        0.5 * (self.vth_high + self.vth_low)
    }

    /// Checks cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FeFetError::InvalidParameter`] when the memory window is
    /// empty or inverted, when the read voltage would disturb the stored
    /// polarization (|V_R| ≥ coercive voltage), or when any physical scale
    /// (β, τ₀, thermal voltage, pulse width) is non-positive.
    pub fn validate(&self) -> Result<(), FeFetError> {
        // `partial_cmp` (not `<=`) so a NaN bound is also rejected.
        if self.vth_high.partial_cmp(&self.vth_low) != Some(std::cmp::Ordering::Greater) {
            return Err(FeFetError::InvalidParameter {
                name: "vth_high",
                reason: format!(
                    "memory window must be positive (vth_low={}, vth_high={})",
                    self.vth_low, self.vth_high
                ),
            });
        }
        if self.read_voltage.abs() >= self.coercive_voltage {
            return Err(FeFetError::InvalidParameter {
                name: "read_voltage",
                reason: format!(
                    "read voltage {} V would disturb polarization (coercive voltage {} V)",
                    self.read_voltage, self.coercive_voltage
                ),
            });
        }
        for (name, v) in [
            ("beta", self.beta),
            ("tau0", self.tau0),
            ("thermal_voltage", self.thermal_voltage),
            ("pulse_width", self.pulse_width),
            ("preisach_width", self.preisach_width),
            ("switching_voltage_scale", self.switching_voltage_scale),
            ("slope_factor", self.slope_factor),
        ] {
            if !is_strictly_positive(v) {
                return Err(FeFetError::InvalidParameter {
                    name,
                    reason: format!("must be positive, got {v}"),
                });
            }
        }
        if self.sigma_vth < 0.0 {
            return Err(FeFetError::InvalidParameter {
                name: "sigma_vth",
                reason: format!("must be non-negative, got {}", self.sigma_vth),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        FeFetParams::default()
            .validate()
            .expect("defaults must validate");
    }

    #[test]
    fn memory_window_and_midpoint() {
        let p = FeFetParams::default();
        assert!((p.memory_window() - 1.2).abs() < 1e-12);
        assert!((p.vth_mid() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn inverted_window_rejected() {
        let p = FeFetParams {
            vth_low: 1.5,
            vth_high: 0.2,
            ..FeFetParams::default()
        };
        assert!(matches!(
            p.validate(),
            Err(FeFetError::InvalidParameter {
                name: "vth_high",
                ..
            })
        ));
    }

    #[test]
    fn destructive_read_rejected() {
        let p = FeFetParams {
            read_voltage: 3.0,
            ..FeFetParams::default()
        };
        assert!(matches!(
            p.validate(),
            Err(FeFetError::InvalidParameter {
                name: "read_voltage",
                ..
            })
        ));
    }

    #[test]
    fn nonpositive_scale_rejected() {
        let p = FeFetParams {
            beta: 0.0,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
        let p = FeFetParams {
            tau0: -1.0,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn negative_sigma_rejected() {
        let p = FeFetParams {
            sigma_vth: -0.01,
            ..FeFetParams::default()
        };
        assert!(p.validate().is_err());
    }
}
