//! Property-based tests of the FeFET device model invariants.

use proptest::prelude::*;
use unicaim_fefet::{
    saturation_polarization, switching_fraction, FeFet, FeFetModel, FeFetParams, LevelProgrammer,
    PulseSpec, VariationModel, VthGrid,
};

fn model() -> FeFetModel {
    FeFetModel::new(FeFetParams::default())
}

proptest! {
    /// Polarization never leaves [-1, 1] no matter what pulse train is applied.
    #[test]
    fn polarization_stays_bounded(pulses in proptest::collection::vec((-6.0f64..6.0, 1e-9f64..1e-6), 1..40)) {
        let m = model();
        let mut dev = FeFet::fresh();
        for (amplitude, width) in pulses {
            m.apply_pulse(&mut dev, PulseSpec { amplitude, width });
            prop_assert!((-1.0..=1.0).contains(&dev.polarization()));
        }
    }

    /// Sub-coercive pulses never change state (non-destructive read).
    #[test]
    fn subcoercive_never_disturbs(amp in -2.4f64..2.4, width in 1e-9f64..1e-3, target in -1.0f64..1.0) {
        let m = model();
        let mut dev = FeFet::fresh();
        m.program_polarization(&mut dev, target);
        let before = dev.polarization();
        m.apply_pulse(&mut dev, PulseSpec { amplitude: amp, width });
        prop_assert_eq!(dev.polarization(), before);
    }

    /// Saturation polarization is odd and bounded by [-1, 1].
    #[test]
    fn saturation_odd_bounded(v in -8.0f64..8.0) {
        let p = FeFetParams::default();
        let s = saturation_polarization(&p, v);
        let s_neg = saturation_polarization(&p, -v);
        prop_assert!((s + s_neg).abs() < 1e-12);
        prop_assert!(s.abs() <= 1.0);
    }

    /// Switching fraction lies in [0, 1] and is monotone in pulse width.
    #[test]
    fn switching_fraction_bounds(amp in 0.0f64..8.0, w1 in 1e-10f64..1e-4, scale in 1.0f64..100.0) {
        let p = FeFetParams::default();
        let f1 = switching_fraction(&p, PulseSpec { amplitude: amp, width: w1 });
        let f2 = switching_fraction(&p, PulseSpec { amplitude: amp, width: w1 * scale });
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&f2));
        prop_assert!(f2 >= f1);
    }

    /// Programming any target polarization lands the intrinsic vth on the
    /// linear map of that target.
    #[test]
    fn program_then_vth_roundtrip(target in -1.0f64..1.0) {
        let m = model();
        let p = *m.params();
        let mut dev = FeFet::fresh();
        m.program_polarization(&mut dev, target);
        let want = p.vth_mid() - 0.5 * p.memory_window() * target;
        prop_assert!((m.vth(&dev) - want).abs() < 1e-9);
    }

    /// Drain current is monotone non-decreasing in gate voltage.
    #[test]
    fn current_monotone_vg(vth in 0.2f64..1.4, vg_lo in -0.5f64..1.5, dv in 0.001f64..0.5, vds in 0.01f64..1.0) {
        let m = model();
        let i_lo = m.drain_current_at_vth(vth, vg_lo, vds);
        let i_hi = m.drain_current_at_vth(vth, vg_lo + dv, vds);
        prop_assert!(i_hi >= i_lo);
    }

    /// Drain current is monotone non-increasing in threshold voltage.
    #[test]
    fn current_monotone_vth(vth_lo in 0.2f64..1.3, dv in 0.001f64..0.1, vg in 0.0f64..1.6, vds in 0.01f64..1.0) {
        let m = model();
        let i_lo_vth = m.drain_current_at_vth(vth_lo, vg, vds);
        let i_hi_vth = m.drain_current_at_vth(vth_lo + dv, vg, vds);
        prop_assert!(i_hi_vth <= i_lo_vth);
    }

    /// Drain current is always at least the leakage floor and finite.
    #[test]
    fn current_positive_finite(vth in 0.0f64..2.0, vg in -1.0f64..2.0, vds in 0.0f64..1.2) {
        let m = model();
        let i = m.drain_current_at_vth(vth, vg, vds);
        prop_assert!(i >= m.params().leakage);
        prop_assert!(i.is_finite());
    }

    /// Level programming is idempotent: programming the same level twice
    /// gives the same vth.
    #[test]
    fn level_programming_idempotent(level in 0usize..5) {
        let m = model();
        let grid = VthGrid::new(&m, 5).unwrap();
        let prog = LevelProgrammer::new(grid);
        let mut dev = FeFet::fresh();
        prog.program(&m, &mut dev, level).unwrap();
        let first = m.vth(&dev);
        prog.program(&m, &mut dev, level).unwrap();
        prop_assert!((m.vth(&dev) - first).abs() < 1e-12);
    }

    /// Variation offsets are deterministic and independent of call order.
    #[test]
    fn variation_deterministic(seed in 0u64..1000, idx in 0u64..10_000) {
        let v1 = VariationModel::paper_default(seed);
        let v2 = VariationModel::paper_default(seed);
        prop_assert_eq!(v1.offset(idx), v2.offset(idx));
    }
}
