//! Parity of every dispatched kernel tier against its scalar twin, plus
//! the SIMD-tail edge shapes.
//!
//! The contract under test (see the `kernels` module docs):
//!
//! * integer kernels (`dot_i8`, the `_q` scoring kernels, the quantizers)
//!   are **bit-exact** on every tier;
//! * the SSE2 tier's f32 kernels are **bit-identical** to scalar by
//!   construction;
//! * the AVX2+FMA f32 dot is within the derived bound
//!   `2·n·ε·Σ|aᵢ·bᵢ|`, `ε = 2⁻²⁴` (FMA only removes rounding steps, and
//!   each path's forward error versus the exact sum is ≤ `n·ε·Σ|aᵢ·bᵢ|`
//!   to first order).
//!
//! Tiers are exercised through the `*_with` twins: the
//! `UNICAIM_KERNEL_BACKEND` override is resolved once per process (CI
//! runs a whole matrix leg with `=scalar` for that path), so in-process
//! tier iteration has to pass the backend explicitly.

use proptest::prelude::*;
use unicaim_attention::kernels::{
    attend_gather_with, dot_gather_chunked, dot_gather_q_with, dot_gather_with, dot_i8_with,
    dot_prefix_with, dot_with, quantize_arena_i8, quantize_row_cell3_with, quantize_row_i8_with,
    weighted_sum_gather_with, KernelBackend, QuantRowView, RowView,
};
use unicaim_attention::Matrix;

/// Dimensions that stress every SIMD tail: below one vector, straddling
/// the 4/8/16-lane widths, and one off either side of a full 64-element
/// block.
const EDGE_DIMS: [usize; 6] = [1, 3, 7, 9, 63, 65];

/// The derived f32 dot parity bound: `2·n·ε·Σ|aᵢ·bᵢ|` with `ε = 2⁻²⁴`,
/// evaluated in f64 so the bound arithmetic itself cannot round away.
fn dot_parity_bound(a: &[f32], b: &[f32]) -> f32 {
    let sum_abs: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (f64::from(x) * f64::from(y)).abs())
        .sum();
    let n = a.len() as f64;
    (2.0 * n * (-24.0f64).exp2() * sum_abs) as f32 + 1e-30
}

fn deterministic_row(len: usize, seed: u64) -> Vec<f32> {
    Matrix::random_normal(1, len, 1.5, seed).row(0).to_vec()
}

#[test]
fn edge_dims_dot_parity_on_every_tier() {
    for &dim in &EDGE_DIMS {
        let a = deterministic_row(dim, 11 + dim as u64);
        let b = deterministic_row(dim, 97 + dim as u64);
        let scalar = dot_with(KernelBackend::Scalar, &a, &b);
        for backend in KernelBackend::supported() {
            let d = dot_with(backend, &a, &b);
            if backend != KernelBackend::Avx2 {
                assert_eq!(
                    d.to_bits(),
                    scalar.to_bits(),
                    "dim {dim} tier {} must be bit-identical to scalar",
                    backend.label()
                );
            }
            let bound = dot_parity_bound(&a, &b);
            assert!(
                (d - scalar).abs() <= bound,
                "dim {dim} tier {}: |{d} - {scalar}| > {bound}",
                backend.label()
            );
        }
    }
}

#[test]
fn edge_dims_integer_paths_bit_exact_on_every_tier() {
    for &dim in &EDGE_DIMS {
        let src = deterministic_row(dim, 7 + dim as u64);
        let qsrc = deterministic_row(dim, 43 + dim as u64);
        let mut expect_q = vec![0i8; dim];
        let expect_scale = quantize_row_i8_with(KernelBackend::Scalar, &src, &mut expect_q);
        let mut expect_c3 = vec![0i8; dim];
        let expect_c3_scale = quantize_row_cell3_with(KernelBackend::Scalar, &src, &mut expect_c3);
        let mut qq = vec![0i8; dim];
        quantize_row_i8_with(KernelBackend::Scalar, &qsrc, &mut qq);
        let expect_dot = dot_i8_with(KernelBackend::Scalar, &qq, &expect_q);
        for backend in KernelBackend::supported() {
            let mut q = vec![0i8; dim];
            let scale = quantize_row_i8_with(backend, &src, &mut q);
            assert_eq!(q, expect_q, "dim {dim} tier {}", backend.label());
            assert_eq!(
                scale.to_bits(),
                expect_scale.to_bits(),
                "dim {dim} tier {}",
                backend.label()
            );
            let mut c3 = vec![0i8; dim];
            let c3_scale = quantize_row_cell3_with(backend, &src, &mut c3);
            assert_eq!(c3, expect_c3, "dim {dim} tier {}", backend.label());
            assert_eq!(
                c3_scale.to_bits(),
                expect_c3_scale.to_bits(),
                "dim {dim} tier {}",
                backend.label()
            );
            assert_eq!(
                dot_i8_with(backend, &qq, &q),
                expect_dot,
                "dim {dim} tier {}",
                backend.label()
            );
        }
    }
}

#[test]
fn empty_gather_and_single_row_arena_on_every_tier() {
    for &dim in &EDGE_DIMS {
        let arena = deterministic_row(dim, 3 + dim as u64);
        let values = deterministic_row(dim, 17 + dim as u64);
        let query = deterministic_row(dim, 29 + dim as u64);
        let keys = RowView::contiguous(&arena, dim);
        let vals = RowView::contiguous(&values, dim);
        let (qarena, qscales) = quantize_arena_i8(&arena, dim);
        let qkeys = QuantRowView::contiguous(&qarena, &qscales, dim);
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8_with(KernelBackend::Scalar, &query, &mut qq);
        for backend in KernelBackend::supported() {
            // Empty gather: no output, and fused attend zeroes `out`.
            let mut empty_out: Vec<f32> = Vec::new();
            dot_gather_with(backend, &query, keys, &[], 1.0, &mut empty_out);
            assert!(empty_out.is_empty());
            let mut weights = Vec::new();
            let mut out = vec![5.0f32; dim];
            attend_gather_with(
                backend,
                &query,
                keys,
                vals,
                &[],
                1.0,
                &mut weights,
                &mut out,
            );
            assert_eq!(out, vec![0.0; dim], "tier {}", backend.label());

            // Single-row arena: one gathered dot, and the fused attend
            // collapses to that row's values (softmax of one logit = 1).
            let mut one = [0.0f32];
            dot_gather_with(backend, &query, keys, &[0], 0.5, &mut one);
            let expect = dot_with(backend, &query, &arena) * 0.5;
            assert_eq!(
                one[0].to_bits(),
                expect.to_bits(),
                "tier {}",
                backend.label()
            );
            let mut one_q = [0.0f32];
            dot_gather_q_with(backend, &qq, qs, qkeys, &[0], 0.5, &mut one_q);
            let expect_q = dot_i8_with(backend, &qq, &qarena) as f32 * (0.5 * qs * qscales[0]);
            assert_eq!(
                one_q[0].to_bits(),
                expect_q.to_bits(),
                "tier {}",
                backend.label()
            );
            attend_gather_with(
                backend,
                &query,
                keys,
                vals,
                &[0],
                1.0,
                &mut weights,
                &mut out,
            );
            for (o, v) in out.iter().zip(&values) {
                assert!(
                    (o - v).abs() <= 1e-6 * v.abs().max(1.0),
                    "tier {}: single-row attend {out:?} != values {values:?}",
                    backend.label()
                );
            }
        }
    }
}

proptest! {
    // `with_cases_env`: sanitizer jobs dial the count down via
    // `UNICAIM_PROPTEST_CASES`; Miri clamps it to 2.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// f32 dot: every supported tier stays within the derived FMA bound
    /// of scalar, and the SSE2 tier is bit-identical.
    #[test]
    fn dot_every_tier_within_derived_bound_of_scalar(
        a in proptest::collection::vec(-8.0f32..8.0, 1..200),
        seed in 0u64..1000,
    ) {
        let b = deterministic_row(a.len(), seed);
        let scalar = dot_with(KernelBackend::Scalar, &a, &b);
        let bound = dot_parity_bound(&a, &b);
        for backend in KernelBackend::supported() {
            let d = dot_with(backend, &a, &b);
            prop_assert!(
                (d - scalar).abs() <= bound,
                "tier {}: |{d} - {scalar}| = {} > {bound}",
                backend.label(),
                (d - scalar).abs()
            );
            if backend == KernelBackend::Sse2 {
                prop_assert_eq!(d.to_bits(), scalar.to_bits());
            }
        }
    }

    /// i8 dot: bit-exact integer arithmetic on every tier.
    #[test]
    fn dot_i8_every_tier_bit_exact(
        a in proptest::collection::vec(-127i8..=127, 1..200),
        b in proptest::collection::vec(-127i8..=127, 1..200),
    ) {
        let n = a.len().min(b.len());
        let scalar = dot_i8_with(KernelBackend::Scalar, &a[..n], &b[..n]);
        for backend in KernelBackend::supported() {
            prop_assert_eq!(dot_i8_with(backend, &a[..n], &b[..n]), scalar);
        }
    }

    /// Quantized gather scoring: integer dot is exact and the rescale is
    /// shared scalar code, so the whole kernel is bit-exact across tiers.
    #[test]
    fn dot_gather_q_every_tier_bit_exact(
        dim in 1usize..80,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let arena: Vec<f32> = Matrix::random_normal(n, dim, 2.0, seed).as_slice().to_vec();
        let (qarena, scales) = quantize_arena_i8(&arena, dim);
        let keys = QuantRowView::contiguous(&qarena, &scales, dim);
        let query = deterministic_row(dim, seed ^ 0xabcd);
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8_with(KernelBackend::Scalar, &query, &mut qq);
        let rows: Vec<usize> = (0..n).rev().collect();
        let mut expect = vec![0.0f32; n];
        dot_gather_q_with(KernelBackend::Scalar, &qq, qs, keys, &rows, 0.25, &mut expect);
        for backend in KernelBackend::supported() {
            let mut out = vec![0.0f32; n];
            dot_gather_q_with(backend, &qq, qs, keys, &rows, 0.25, &mut out);
            for (x, e) in out.iter().zip(&expect) {
                prop_assert_eq!(x.to_bits(), e.to_bits());
            }
        }
    }

    /// Prefix and gather scoring agree on every tier (same per-row kernel,
    /// different row enumeration).
    #[test]
    fn dot_prefix_matches_gather_on_every_tier(
        dim in 1usize..80,
        n in 1usize..16,
        seed in 0u64..1000,
    ) {
        let arena: Vec<f32> = Matrix::random_normal(n, dim, 1.0, seed).as_slice().to_vec();
        let keys = RowView::contiguous(&arena, dim);
        let query = deterministic_row(dim, seed ^ 0x77);
        let rows: Vec<usize> = (0..n).collect();
        for backend in KernelBackend::supported() {
            let mut a = vec![0.0f32; n];
            dot_prefix_with(backend, &query, keys, 1.5, &mut a);
            let mut b = vec![0.0f32; n];
            dot_gather_with(backend, &query, keys, &rows, 1.5, &mut b);
            prop_assert_eq!(&a, &b);
        }
    }

    /// Weighted sums: SSE2 bit-identical to scalar; AVX2 within a per-
    /// element fused-rounding bound of scalar.
    #[test]
    fn weighted_sum_every_tier_tracks_scalar(
        dim in 1usize..80,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let arena: Vec<f32> = Matrix::random_normal(n, dim, 1.0, seed).as_slice().to_vec();
        let values = RowView::contiguous(&arena, dim);
        let weights = deterministic_row(n, seed ^ 0x5a5a);
        let rows: Vec<usize> = (0..n).collect();
        let mut scalar = vec![0.0f32; dim];
        weighted_sum_gather_with(KernelBackend::Scalar, &weights, values, &rows, &mut scalar);
        for backend in KernelBackend::supported() {
            let mut out = vec![0.0f32; dim];
            weighted_sum_gather_with(backend, &weights, values, &rows, &mut out);
            for (o, s) in out.iter().zip(&scalar) {
                if backend == KernelBackend::Sse2 {
                    prop_assert_eq!(o.to_bits(), s.to_bits());
                } else {
                    // n fused accumulations, each within 1 ulp of the
                    // scalar step: generous absolute-relative envelope.
                    prop_assert!(
                        (o - s).abs() <= 1e-4 * s.abs().max(1.0),
                        "tier {}: {o} vs {s}",
                        backend.label()
                    );
                }
            }
        }
    }

    /// Fused attention stays within a softmax-amplified envelope of the
    /// scalar tier (logit perturbations are ≤ the derived dot bound).
    #[test]
    fn attend_gather_every_tier_tracks_scalar(
        dim in 1usize..64,
        n in 1usize..16,
        seed in 0u64..1000,
    ) {
        let keys_arena: Vec<f32> = Matrix::random_normal(n, dim, 1.0, seed).as_slice().to_vec();
        let vals_arena: Vec<f32> = Matrix::random_normal(n, dim, 1.0, seed ^ 1).as_slice().to_vec();
        let keys = RowView::contiguous(&keys_arena, dim);
        let vals = RowView::contiguous(&vals_arena, dim);
        let query = deterministic_row(dim, seed ^ 2);
        let rows: Vec<usize> = (0..n).collect();
        let scale = 1.0 / (dim as f32).sqrt();
        let mut w = Vec::new();
        let mut scalar = vec![0.0f32; dim];
        attend_gather_with(KernelBackend::Scalar, &query, keys, vals, &rows, scale, &mut w, &mut scalar);
        for backend in KernelBackend::supported() {
            let mut out = vec![0.0f32; dim];
            attend_gather_with(backend, &query, keys, vals, &rows, scale, &mut w, &mut out);
            for (o, s) in out.iter().zip(&scalar) {
                prop_assert!(
                    (o - s).abs() <= 5e-3 * s.abs().max(1.0),
                    "tier {}: {o} vs {s}",
                    backend.label()
                );
            }
        }
    }

    /// The chunked gather is partition-invariant: identical bits for
    /// every worker count × chunk size, including the sequential path.
    #[test]
    fn chunked_gather_partition_invariant(
        dim in 1usize..48,
        n in 1usize..64,
        seed in 0u64..1000,
        chunk in 1usize..16,
        workers in 1usize..5,
    ) {
        let arena: Vec<f32> = Matrix::random_normal(n, dim, 1.0, seed).as_slice().to_vec();
        let keys = RowView::contiguous(&arena, dim);
        let query = deterministic_row(dim, seed ^ 0x33);
        let rows: Vec<usize> = (0..n).rev().collect();
        let mut reference = vec![0.0f32; n];
        dot_gather_chunked(&query, keys, &rows, 0.5, &mut reference, n.max(1), 1);
        let mut out = vec![0.0f32; n];
        dot_gather_chunked(&query, keys, &rows, 0.5, &mut out, chunk, workers);
        for (x, e) in out.iter().zip(&reference) {
            prop_assert_eq!(x.to_bits(), e.to_bits());
        }
    }
}
