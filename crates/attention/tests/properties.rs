//! Property-based tests of the attention substrate invariants.

use proptest::prelude::*;
use unicaim_attention::metrics::{cosine_similarity, relative_l2_error, set_f1};
use unicaim_attention::{
    argtop_k, attention_output, attention_scores, softmax_in_place, KvEntry, KvStore, Matrix,
};

proptest! {
    /// Softmax outputs are a probability distribution, invariant to shifts.
    #[test]
    fn softmax_distribution(mut xs in proptest::collection::vec(-30.0f32..30.0, 1..64)) {
        let mut shifted: Vec<f32> = xs.iter().map(|x| x + 13.5).collect();
        softmax_in_place(&mut xs);
        softmax_in_place(&mut shifted);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        for (a, b) in xs.iter().zip(&shifted) {
            prop_assert!((a - b).abs() < 1e-4, "shift invariance violated");
        }
        prop_assert!(xs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Attention output is a convex combination of the values.
    #[test]
    fn attention_output_in_convex_hull(
        dim in 2usize..8,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let keys = Matrix::random_normal(n, dim, 1.0, seed);
        let values = Matrix::random_normal(n, dim, 1.0, seed ^ 1);
        let query = Matrix::random_normal(1, dim, 1.0, seed ^ 2);
        let kr: Vec<&[f32]> = (0..n).map(|i| keys.row(i)).collect();
        let vr: Vec<&[f32]> = (0..n).map(|i| values.row(i)).collect();
        let out = attention_output(query.row(0), &kr, &vr);
        for (d, out_d) in out.iter().enumerate().take(dim) {
            let lo = (0..n).map(|i| values.get(i, d)).fold(f32::INFINITY, f32::min);
            let hi = (0..n).map(|i| values.get(i, d)).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(*out_d >= lo - 1e-4 && *out_d <= hi + 1e-4,
                "output {} outside hull [{lo}, {hi}]", out_d);
        }
    }

    /// Scores scale linearly with the query.
    #[test]
    fn scores_linear_in_query(dim in 2usize..8, seed in 0u64..1000, scale in 0.1f32..4.0) {
        let key = Matrix::random_normal(1, dim, 1.0, seed);
        let query = Matrix::random_normal(1, dim, 1.0, seed ^ 3);
        let scaled: Vec<f32> = query.row(0).iter().map(|x| x * scale).collect();
        let s1 = attention_scores(query.row(0), &[key.row(0)])[0];
        let s2 = attention_scores(&scaled, &[key.row(0)])[0];
        prop_assert!((s2 - s1 * scale).abs() < 1e-3 * s1.abs().max(1.0));
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..500) {
        let a = Matrix::random_uniform(3, 4, 1.0, seed);
        let b = Matrix::random_uniform(3, 4, 1.0, seed ^ 5);
        let c = Matrix::random_uniform(4, 2, 1.0, seed ^ 9);
        let mut ab = Matrix::zeros(3, 4);
        for r in 0..3 {
            for col in 0..4 {
                ab.set(r, col, a.get(r, col) + b.get(r, col));
            }
        }
        let lhs = ab.matmul(&c).unwrap();
        let ac = a.matmul(&c).unwrap();
        let bc = b.matmul(&c).unwrap();
        for r in 0..3 {
            for col in 0..2 {
                prop_assert!((lhs.get(r, col) - ac.get(r, col) - bc.get(r, col)).abs() < 1e-4);
            }
        }
    }

    /// argtop_k returns k distinct indices in descending value order.
    #[test]
    fn argtopk_sound(values in proptest::collection::vec(-10.0f32..10.0, 1..64), k in 1usize..16) {
        let top = argtop_k(&values, k);
        prop_assert_eq!(top.len(), k.min(values.len()));
        let mut seen = std::collections::BTreeSet::new();
        for w in top.windows(2) {
            prop_assert!(values[w[0]] >= values[w[1]], "not descending");
        }
        for &i in &top {
            prop_assert!(seen.insert(i), "duplicate index");
        }
        // Nothing outside the selection beats the selection minimum.
        if let Some(&last) = top.last() {
            let min_sel = values[last];
            for (i, &v) in values.iter().enumerate() {
                if !top.contains(&i) {
                    prop_assert!(v <= min_sel + 1e-6);
                }
            }
        }
    }

    /// Cosine similarity is bounded and symmetric; relative error is zero
    /// only for identical vectors.
    #[test]
    fn metric_properties(
        a in proptest::collection::vec(-5.0f32..5.0, 4..16),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 2.0).collect();
        let cs = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&cs));
        prop_assert!((cosine_similarity(&a, &b) - cosine_similarity(&b, &a)).abs() < 1e-12);
        prop_assert!(relative_l2_error(&a, &a) == 0.0);
    }

    /// Set F1 is symmetric in P/R exchange and bounded.
    #[test]
    fn f1_bounds(
        pred in proptest::collection::btree_set(0usize..32, 0..16),
        truth in proptest::collection::btree_set(0usize..32, 0..16),
    ) {
        let s = set_f1(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        prop_assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
        // Swapping prediction and truth swaps precision and recall.
        let t = set_f1(&truth, &pred);
        if !pred.is_empty() && !truth.is_empty() {
            prop_assert!((s.precision - t.recall).abs() < 1e-12);
            prop_assert!((s.f1 - t.f1).abs() < 1e-12);
        }
    }

    /// KvStore: writes and evictions keep len consistent with occupancy.
    #[test]
    fn kvstore_len_consistency(
        ops in proptest::collection::vec((0usize..6, proptest::bool::ANY), 1..50),
    ) {
        let mut store = KvStore::new(6, 2);
        let mut expect = 0usize;
        for (i, (slot, write)) in ops.iter().enumerate() {
            if *write {
                let was = store.entry(*slot).is_some();
                store.write_slot(*slot, KvEntry {
                    token_id: i,
                    key: vec![0.0; 2],
                    value: vec![0.0; 2],
                }).unwrap();
                if !was { expect += 1; }
            } else if store.evict_slot(*slot).unwrap().is_some() {
                expect -= 1;
            }
            prop_assert_eq!(store.len(), expect);
        }
    }

    /// The structure-of-arrays KvStore tracks a naive slot-of-entries model
    /// exactly: same append/write/evict outcomes, same occupancy, same
    /// `slot_of_token` answers, same per-slot contents.
    #[test]
    fn kvstore_matches_naive_slot_model(
        ops in proptest::collection::vec((0usize..5, 0usize..3, -4i32..4), 1..60),
    ) {
        const CAP: usize = 5;
        const DIM: usize = 3;
        let mut store = KvStore::new(CAP, DIM);
        // The pre-refactor representation: one Option<KvEntry> per slot.
        let mut model: Vec<Option<KvEntry>> = vec![None; CAP];
        for (i, &(slot, op, seed)) in ops.iter().enumerate() {
            let entry = KvEntry {
                token_id: i,
                key: vec![seed as f32 * 0.5; DIM],
                value: vec![seed as f32 * 0.25 + 1.0; DIM],
            };
            match op {
                // Direct in-slot overwrite.
                0 => {
                    let prev = store.write_slot(slot, entry.clone()).unwrap();
                    let model_prev = model[slot].replace(entry);
                    prop_assert_eq!(prev, model_prev);
                }
                // Append into the first free slot.
                1 => {
                    let model_free = model.iter().position(Option::is_none);
                    prop_assert_eq!(store.first_free_slot(), model_free);
                    match model_free {
                        Some(free) => {
                            prop_assert_eq!(store.append(entry.clone()).unwrap(), free);
                            model[free] = Some(entry);
                        }
                        None => prop_assert!(store.append(entry).is_err()),
                    }
                }
                // Evict.
                _ => {
                    let evicted = store.evict_slot(slot).unwrap();
                    prop_assert_eq!(evicted, model[slot].take());
                }
            }
            // Full observable-state agreement after every operation.
            prop_assert_eq!(store.len(), model.iter().filter(|s| s.is_some()).count());
            for (s, expected) in model.iter().enumerate() {
                prop_assert_eq!(&store.entry(s), expected);
            }
            for e in model.iter().flatten() {
                let found = model.iter().position(
                    |m| m.as_ref().is_some_and(|x| x.token_id == e.token_id));
                prop_assert_eq!(store.slot_of_token(e.token_id), found);
            }
            let model_ids: Vec<usize> = model.iter().flatten().map(|e| e.token_id).collect();
            prop_assert_eq!(store.token_ids(), model_ids);
        }
    }

    /// The fused gather→score→softmax→weighted-sum kernel matches the naive
    /// per-slice attention path within 1e-5 relative error.
    #[test]
    fn fused_attend_matches_naive(
        dim in 2usize..10,
        n in 1usize..16,
        seed in 0u64..500,
    ) {
        use unicaim_attention::kernels::{attend_gather, RowView};
        let keys = Matrix::random_normal(n, dim, 1.0, seed);
        let values = Matrix::random_normal(n, dim, 1.0, seed ^ 11);
        let query = Matrix::random_normal(1, dim, 1.0, seed ^ 22);
        // Gather a strided subset of rows, not just a prefix.
        let rows: Vec<usize> = (0..n).step_by(2).collect();
        let kr: Vec<&[f32]> = rows.iter().map(|&r| keys.row(r)).collect();
        let vr: Vec<&[f32]> = rows.iter().map(|&r| values.row(r)).collect();
        let naive = attention_output(query.row(0), &kr, &vr);
        let mut out = vec![0.0f32; dim];
        let mut scratch = Vec::new();
        attend_gather(
            query.row(0),
            RowView::contiguous(keys.as_slice(), dim),
            RowView::contiguous(values.as_slice(), dim),
            &rows,
            1.0 / (dim as f32).sqrt(),
            &mut scratch,
            &mut out,
        );
        for (a, b) in out.iter().zip(&naive) {
            prop_assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "fused {a} vs naive {b}"
            );
        }
    }

    /// Quantized parity (satellite): the `i8` integer dot stays within the
    /// *derived* round-trip error bound of the f32 kernel. With symmetric
    /// per-row max-abs scaling, each element's quantization error is at
    /// most `scale/2`, so
    /// `|a·b − â·b̂| ≤ (s_a/2)·Σ|b_i| + (s_b/2)·Σ|â_i|`.
    #[test]
    fn int8_dot_within_derived_error_bound(
        a in proptest::collection::vec(-8.0f32..8.0, 1..96),
        seed in 0u64..500,
    ) {
        use unicaim_attention::kernels::{dot, dot_i8, quantize_row_i8};
        let b: Vec<f32> = Matrix::random_normal(1, a.len(), 2.0, seed).row(0).to_vec();
        let mut qa = vec![0i8; a.len()];
        let mut qb = vec![0i8; b.len()];
        let sa = quantize_row_i8(&a, &mut qa);
        let sb = quantize_row_i8(&b, &mut qb);
        let exact = dot(&a, &b);
        let quantized = sa * sb * dot_i8(&qa, &qb) as f32;
        let sum_b: f32 = b.iter().map(|x| x.abs()).sum();
        let sum_qa: f32 = qa.iter().map(|&q| sa * f32::from(q).abs()).sum();
        let bound = 0.5 * sa * sum_b + 0.5 * sb * sum_qa;
        // Small slack for f32 rounding in the bound arithmetic itself.
        prop_assert!(
            (exact - quantized).abs() <= bound * (1.0 + 1e-4) + 1e-5,
            "|{exact} - {quantized}| = {} exceeds derived bound {bound}",
            (exact - quantized).abs()
        );
    }

    /// Quantized parity (satellite): snapping to the 3-bit cell's five
    /// signed levels is idempotent — re-quantizing the dequantized row
    /// reproduces the identical levels and scale.
    #[test]
    fn cell3_snap_is_idempotent(
        src in proptest::collection::vec(-4.0f32..4.0, 1..64),
    ) {
        use unicaim_attention::kernels::{dequantize_row, quantize_row_cell3};
        let mut q1 = vec![0i8; src.len()];
        let s1 = quantize_row_cell3(&src, &mut q1);
        let mut snapped = vec![0.0f32; src.len()];
        dequantize_row(&q1, s1, &mut snapped);
        let mut q2 = vec![0i8; src.len()];
        let s2 = quantize_row_cell3(&snapped, &mut q2);
        prop_assert_eq!(&q1, &q2);
        prop_assert_eq!(s1, s2);
        // And every level is one of the five signed cell levels.
        prop_assert!(q1.iter().all(|q| (-2..=2).contains(q)));
    }

    /// The fused quantized attention stays close to the f32 fused kernel:
    /// with ±127 levels the scores carry sub-percent error, and softmax +
    /// convex combination cannot amplify it unboundedly.
    #[test]
    fn attend_gather_q_tracks_f32(
        dim in 2usize..10,
        n in 1usize..12,
        seed in 0u64..300,
    ) {
        use unicaim_attention::kernels::{
            attend_gather, attend_gather_q, quantize_arena_i8, quantize_row_i8, QuantRowView,
            RowView,
        };
        let keys = Matrix::random_normal(n, dim, 1.0, seed);
        let values = Matrix::random_normal(n, dim, 1.0, seed ^ 1);
        let query = Matrix::random_normal(1, dim, 1.0, seed ^ 2);
        let (qkeys, scales) = quantize_arena_i8(keys.as_slice(), dim);
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(query.row(0), &mut qq);
        let rows: Vec<usize> = (0..n).step_by(2).collect();
        let scale = 1.0 / (dim as f32).sqrt();
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        let mut out_q = vec![0.0f32; dim];
        let mut out_f = vec![0.0f32; dim];
        attend_gather_q(
            &qq,
            qs,
            QuantRowView::contiguous(&qkeys, &scales, dim),
            RowView::contiguous(values.as_slice(), dim),
            &rows,
            scale,
            &mut w1,
            &mut out_q,
        );
        attend_gather(
            query.row(0),
            RowView::contiguous(keys.as_slice(), dim),
            RowView::contiguous(values.as_slice(), dim),
            &rows,
            scale,
            &mut w2,
            &mut out_f,
        );
        for (a, b) in out_q.iter().zip(&out_f) {
            prop_assert!(a.is_finite());
            prop_assert!((a - b).abs() <= 0.15 * b.abs().max(1.0), "{out_q:?} vs {out_f:?}");
        }
    }

    /// Paged parity (tentpole): every gather/attend kernel — f32 and the
    /// quantized twins — produces **bit-identical** output whether it
    /// walks a flat contiguous arena or a non-contiguous page table
    /// holding the same logical rows, for every page geometry (including
    /// rows straddling many small pages).
    #[test]
    fn paged_kernels_match_flat_bit_for_bit(
        dim in 2usize..10,
        n in 1usize..24,
        page_rows in 1usize..7,
        seed in 0u64..300,
    ) {
        use unicaim_attention::kernels::{
            attend_gather, attend_gather_q, attend_prefix, attend_prefix_q, dot_gather,
            dot_gather_q, dot_prefix, dot_prefix_q, quantize_row_i8, QuantRowView, RowView,
        };
        use unicaim_attention::{PageArena, Precision};
        let keys = Matrix::random_normal(n, dim, 1.0, seed);
        let values = Matrix::random_normal(n, dim, 1.0, seed ^ 1);
        let query = Matrix::random_normal(1, dim, 1.0, seed ^ 2);
        let arena = PageArena::new(dim, page_rows);
        let mut store = KvStore::with_arena(&arena, n, Precision::Int8);
        for t in 0..n {
            store.write_slot_parts(t, t, keys.row(t), values.row(t)).unwrap();
        }
        // Flat copies of the exact planes the paged store holds.
        let flat_keys: Vec<f32> =
            (0..n).flat_map(|s| store.key_at(s).unwrap().to_vec()).collect();
        let flat_values: Vec<f32> =
            (0..n).flat_map(|s| store.value_at(s).unwrap().to_vec()).collect();
        let paged_q = store.quant_keys_view().unwrap();
        let flat_q: Vec<i8> = (0..n).flat_map(|s| paged_q.row(s).to_vec()).collect();
        let flat_scales: Vec<f32> = (0..n).map(|s| paged_q.scale(s)).collect();
        let flat_k = RowView::contiguous(&flat_keys, dim);
        let flat_v = RowView::contiguous(&flat_values, dim);
        let flat_qk = QuantRowView::contiguous(&flat_q, &flat_scales, dim);
        let rows: Vec<usize> = (0..n).step_by(2).collect();
        let scale = 1.0 / (dim as f32).sqrt();
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(query.row(0), &mut qq);

        let (mut a, mut b) = (vec![0.0f32; n], vec![0.0f32; n]);
        dot_prefix(query.row(0), store.keys_view(), scale, &mut a[..n]);
        dot_prefix(query.row(0), flat_k, scale, &mut b[..n]);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; rows.len()], vec![0.0f32; rows.len()]);
        dot_gather(query.row(0), store.keys_view(), &rows, scale, &mut a);
        dot_gather(query.row(0), flat_k, &rows, scale, &mut b);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; n], vec![0.0f32; n]);
        dot_prefix_q(&qq, qs, paged_q, scale, &mut a[..n]);
        dot_prefix_q(&qq, qs, flat_qk, scale, &mut b[..n]);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; rows.len()], vec![0.0f32; rows.len()]);
        dot_gather_q(&qq, qs, paged_q, &rows, scale, &mut a);
        dot_gather_q(&qq, qs, flat_qk, &rows, scale, &mut b);
        prop_assert_eq!(&a, &b);

        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        let (mut a, mut b) = (vec![0.0f32; dim], vec![0.0f32; dim]);
        attend_gather(
            query.row(0), store.keys_view(), store.values_view(),
            &rows, scale, &mut w1, &mut a,
        );
        attend_gather(query.row(0), flat_k, flat_v, &rows, scale, &mut w2, &mut b);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; dim], vec![0.0f32; dim]);
        attend_prefix(
            query.row(0), store.keys_view(), store.values_view(),
            n, scale, &mut w1, &mut a,
        );
        attend_prefix(query.row(0), flat_k, flat_v, n, scale, &mut w2, &mut b);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; dim], vec![0.0f32; dim]);
        attend_gather_q(
            &qq, qs, paged_q, store.values_view(), &rows, scale, &mut w1, &mut a,
        );
        attend_gather_q(&qq, qs, flat_qk, flat_v, &rows, scale, &mut w2, &mut b);
        prop_assert_eq!(&a, &b);
        let (mut a, mut b) = (vec![0.0f32; dim], vec![0.0f32; dim]);
        attend_prefix_q(
            &qq, qs, paged_q, store.values_view(), n, scale, &mut w1, &mut a,
        );
        attend_prefix_q(&qq, qs, flat_qk, flat_v, n, scale, &mut w2, &mut b);
        prop_assert_eq!(&a, &b);
    }

    /// Partial top-k selects exactly the same index set (and order) as a
    /// full total-ordered sort, including under heavy score ties.
    #[test]
    fn partial_topk_matches_full_sort(
        raw in proptest::collection::vec(0u8..5, 1..48),
        k in 0usize..52,
    ) {
        use unicaim_attention::kernels::partial_top_k;
        // Few distinct levels => many exact ties.
        let values: Vec<f32> = raw.iter().map(|&v| f32::from(v) * 0.25).collect();
        let mut full: Vec<usize> = (0..values.len()).collect();
        full.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
        full.truncate(k);
        prop_assert_eq!(partial_top_k(&values, k), full);
    }
}

/// The KV store (and the types that cross the serving API with it) must be
/// `Send + Sync`: the kvcache worker-pool scheduler moves per-sequence
/// sessions — each owning a `KvStore` — across threads, and workloads are
/// shared by reference. The store's refcounted pages use `Arc` and the
/// arena a `Mutex`, so this is a compile-time audit, not a runtime cost.
#[test]
fn kv_store_and_workloads_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<unicaim_attention::KvStore>();
    assert_send_sync::<unicaim_attention::KvEntry>();
    assert_send_sync::<unicaim_attention::AttentionError>();
    assert_send_sync::<unicaim_attention::workloads::DecodeWorkload>();
}
