//! SIMD implementations of the kernel-layer primitives, selected at
//! runtime by [`KernelBackend`](crate::kernels::KernelBackend) dispatch.
//!
//! This is the only module in the crate allowed to contain `unsafe` code
//! (the crate root is `#![deny(unsafe_code)]`; this file scopes a single
//! `allow`). The safety architecture is deliberately narrow:
//!
//! * Every intrinsic lives in a private `#[target_feature]`-gated `*_impl`
//!   function whose body is safe except for bounds-commented unaligned
//!   loads/stores.
//! * Each `*_impl` is reachable only through the safe `pub(crate)` wrapper
//!   directly below it, and the wrappers are only ever selected by
//!   `kernels::KernelBackend` dispatch, which clamps any tier that
//!   `is_x86_feature_detected!` did not confirm down to scalar. The
//!   `unsafe` call in each wrapper discharges exactly that obligation.
//!
//! Determinism notes (the kernel-layer contract these implementations
//! uphold — see the `crate::kernels` module docs for the user-facing
//! statement):
//!
//! * `dot_f32_sse2` is **bit-identical** to the scalar kernel: it keeps
//!   the scalar kernel's eight independent accumulators as two `__m128`
//!   registers, performs the same multiply-then-add per element, reduces
//!   the lanes in the same left-to-right order, and adds the scalar tail
//!   last.
//! * `dot_f32_avx2` uses FMA, which skips the per-product rounding; it may
//!   differ from scalar by at most `2·n·ε·Σ|aᵢ·bᵢ|` with `ε = 2⁻²⁴` (each
//!   path's forward error versus the exact sum is bounded by
//!   `n·ε·Σ|aᵢ·bᵢ|` to first order, and FMA only removes rounding steps).
//! * The `i8` dots are exact integer arithmetic on every tier (widening
//!   `i8 → i16 → i32`; `_madd_epi16` pair-sums stay below `2·127²`), so
//!   they are bit-identical to scalar by construction.
//! * `axpy` on SSE2 performs the identical per-element multiply-then-add
//!   (bit-identical to scalar); the AVX2 tier fuses it.
//! * `maxabs` is exact for finite inputs on every tier (`max`/`abs`
//!   introduce no rounding); non-finite inputs are outside the quantizer
//!   contract and may reduce differently across tiers.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::*;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_madd_epi16, _mm256_max_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm_add_epi32, _mm_add_ps, _mm_andnot_ps,
        _mm_loadu_ps, _mm_loadu_si128, _mm_madd_epi16, _mm_max_ps, _mm_mul_ps, _mm_set1_ps,
        _mm_setzero_ps, _mm_setzero_si128, _mm_srai_epi16, _mm_storeu_ps, _mm_storeu_si128,
        _mm_unpackhi_epi8, _mm_unpacklo_epi8,
    };

    use crate::kernels::LANES;

    /// i8 elements consumed per vectorized step of the integer dots.
    const I8_STRIDE: usize = 16;

    // ---------------------------------------------------------------
    // SSE2 tier
    // ---------------------------------------------------------------

    /// f32 dot product, bit-identical to `kernels::dot_scalar`: the scalar
    /// kernel's `LANES = 8` accumulators live in two `__m128` registers
    /// (lanes 0–3 and 4–7), each element sees the same multiply-then-add,
    /// and the reduction order (lane 0 → lane 7, then the tail) matches.
    pub(crate) fn dot_f32_sse2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless `is_x86_feature_detected!("sse2")`.
        unsafe { dot_f32_sse2_impl(a, b) }
    }

    #[target_feature(enable = "sse2")]
    fn dot_f32_sse2_impl(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc_lo = _mm_setzero_ps();
        let mut acc_hi = _mm_setzero_ps();
        for c in 0..chunks {
            let base = c * LANES;
            // SAFETY: `base + 8 <= chunks * LANES <= n`, in bounds of both.
            unsafe {
                let a_lo = _mm_loadu_ps(a.as_ptr().add(base));
                let a_hi = _mm_loadu_ps(a.as_ptr().add(base + 4));
                let b_lo = _mm_loadu_ps(b.as_ptr().add(base));
                let b_hi = _mm_loadu_ps(b.as_ptr().add(base + 4));
                acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(a_lo, b_lo));
                acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(a_hi, b_hi));
            }
        }
        let mut lanes = [0.0f32; LANES];
        // SAFETY: `lanes` holds exactly two 4-lane stores.
        unsafe {
            _mm_storeu_ps(lanes.as_mut_ptr(), acc_lo);
            _mm_storeu_ps(lanes.as_mut_ptr().add(4), acc_hi);
        }
        let mut tail = 0.0f32;
        for i in chunks * LANES..n {
            tail += a[i] * b[i];
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// Integer i8 dot, exact (bit-identical to scalar): bytes sign-extend
    /// to `i16` via the unpack-with-self + arithmetic-shift idiom, pair-sum
    /// through `_mm_madd_epi16` (each pair ≤ `2·127² = 32258`, far inside
    /// `i16`-product `i32` range), and accumulate in four `i32` lanes.
    pub(crate) fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless `is_x86_feature_detected!("sse2")`.
        unsafe { dot_i8_sse2_impl(a, b) }
    }

    #[target_feature(enable = "sse2")]
    fn dot_i8_sse2_impl(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let chunks = n / I8_STRIDE;
        let mut acc = _mm_setzero_si128();
        for c in 0..chunks {
            let base = c * I8_STRIDE;
            // SAFETY: `base + 16 <= chunks * I8_STRIDE <= n`, in bounds.
            unsafe {
                let av = _mm_loadu_si128(a.as_ptr().add(base).cast::<__m128i>());
                let bv = _mm_loadu_si128(b.as_ptr().add(base).cast::<__m128i>());
                let a_lo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(av, av));
                let a_hi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(av, av));
                let b_lo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(bv, bv));
                let b_hi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(bv, bv));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
            }
        }
        let mut lanes = [0i32; 4];
        // SAFETY: `lanes` holds exactly one 128-bit store.
        unsafe {
            _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), acc);
        }
        let mut total: i32 = lanes.iter().sum();
        for i in chunks * I8_STRIDE..n {
            total += i32::from(a[i]) * i32::from(b[i]);
        }
        total
    }

    /// `out[i] += w · x[i]`, bit-identical to scalar: each element sees the
    /// same independent multiply-then-add regardless of vector width.
    pub(crate) fn axpy_sse2(w: f32, x: &[f32], out: &mut [f32]) {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless `is_x86_feature_detected!("sse2")`.
        unsafe { axpy_sse2_impl(w, x, out) }
    }

    #[target_feature(enable = "sse2")]
    fn axpy_sse2_impl(w: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len().min(out.len());
        let chunks = n / 4;
        let wv = _mm_set1_ps(w);
        for c in 0..chunks {
            let base = c * 4;
            // SAFETY: `base + 4 <= n`, in bounds of both slices.
            unsafe {
                let xv = _mm_loadu_ps(x.as_ptr().add(base));
                let ov = _mm_loadu_ps(out.as_ptr().add(base));
                _mm_storeu_ps(
                    out.as_mut_ptr().add(base),
                    _mm_add_ps(ov, _mm_mul_ps(wv, xv)),
                );
            }
        }
        for i in chunks * 4..n {
            out[i] += w * x[i];
        }
    }

    /// Max-abs reduction, exact for finite inputs (`max`/`abs` introduce no
    /// rounding; the fold starts at `+0.0` like the scalar kernel).
    pub(crate) fn maxabs_sse2(src: &[f32]) -> f32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless `is_x86_feature_detected!("sse2")`.
        unsafe { maxabs_sse2_impl(src) }
    }

    #[target_feature(enable = "sse2")]
    fn maxabs_sse2_impl(src: &[f32]) -> f32 {
        let chunks = src.len() / 4;
        let sign = _mm_set1_ps(-0.0);
        let mut acc = _mm_setzero_ps();
        for c in 0..chunks {
            // SAFETY: `c * 4 + 4 <= src.len()`, in bounds.
            unsafe {
                let v = _mm_loadu_ps(src.as_ptr().add(c * 4));
                acc = _mm_max_ps(acc, _mm_andnot_ps(sign, v));
            }
        }
        let mut lanes = [0.0f32; 4];
        // SAFETY: `lanes` holds exactly one 4-lane store.
        unsafe {
            _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        }
        let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
        for &x in &src[chunks * 4..] {
            m = m.max(x.abs());
        }
        m
    }

    // ---------------------------------------------------------------
    // AVX2 + FMA tier
    // ---------------------------------------------------------------

    /// f32 dot product over one 8-lane FMA accumulator. Lane `l`
    /// accumulates exactly the elements scalar lane `l` does and the
    /// reduction order matches, so the only divergence from scalar is the
    /// fused rounding — bounded by `2·n·ε·Σ|aᵢ·bᵢ|`, `ε = 2⁻²⁴`.
    pub(crate) fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless avx2+fma were detected.
        unsafe { dot_f32_avx2_impl(a, b) }
    }

    #[target_feature(enable = "avx2,fma")]
    fn dot_f32_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * LANES;
            // SAFETY: `base + 8 <= chunks * LANES <= n`, in bounds of both.
            unsafe {
                let av = _mm256_loadu_ps(a.as_ptr().add(base));
                let bv = _mm256_loadu_ps(b.as_ptr().add(base));
                acc = _mm256_fmadd_ps(av, bv, acc);
            }
        }
        let mut lanes = [0.0f32; LANES];
        // SAFETY: `lanes` holds exactly one 8-lane store.
        unsafe {
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        }
        let mut tail = 0.0f32;
        for i in chunks * LANES..n {
            tail += a[i] * b[i];
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// Integer i8 dot, exact (bit-identical to scalar): 16 bytes at a time
    /// sign-extend to `i16` via `_mm256_cvtepi8_epi16`, pair-sum through
    /// `_mm256_madd_epi16`, and accumulate in eight `i32` lanes.
    pub(crate) fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless avx2+fma were detected.
        unsafe { dot_i8_avx2_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    fn dot_i8_avx2_impl(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let chunks = n / I8_STRIDE;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            let base = c * I8_STRIDE;
            // SAFETY: `base + 16 <= chunks * I8_STRIDE <= n`, in bounds.
            unsafe {
                let av = _mm_loadu_si128(a.as_ptr().add(base).cast::<__m128i>());
                let bv = _mm_loadu_si128(b.as_ptr().add(base).cast::<__m128i>());
                let a16 = _mm256_cvtepi8_epi16(av);
                let b16 = _mm256_cvtepi8_epi16(bv);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
            }
        }
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` holds exactly one 256-bit store.
        unsafe {
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        }
        let mut total: i32 = lanes.iter().sum();
        for i in chunks * I8_STRIDE..n {
            total += i32::from(a[i]) * i32::from(b[i]);
        }
        total
    }

    /// `out[i] = fma(w, x[i], out[i])` — fused on this tier, so each
    /// element may differ from scalar by one rounding (≤ 1 ulp).
    pub(crate) fn axpy_avx2(w: f32, x: &[f32], out: &mut [f32]) {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless avx2+fma were detected.
        unsafe { axpy_avx2_impl(w, x, out) }
    }

    #[target_feature(enable = "avx2,fma")]
    fn axpy_avx2_impl(w: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len().min(out.len());
        let chunks = n / LANES;
        let wv = _mm256_set1_ps(w);
        for c in 0..chunks {
            let base = c * LANES;
            // SAFETY: `base + 8 <= n`, in bounds of both slices.
            unsafe {
                let xv = _mm256_loadu_ps(x.as_ptr().add(base));
                let ov = _mm256_loadu_ps(out.as_ptr().add(base));
                _mm256_storeu_ps(out.as_mut_ptr().add(base), _mm256_fmadd_ps(wv, xv, ov));
            }
        }
        for i in chunks * LANES..n {
            // Keep the tail fused too, so the whole tier is uniform.
            out[i] = w.mul_add(x[i], out[i]);
        }
    }

    /// Max-abs reduction, exact for finite inputs.
    pub(crate) fn maxabs_avx2(src: &[f32]) -> f32 {
        // SAFETY: only reachable via `KernelBackend` dispatch, which
        // clamps to scalar unless avx2+fma were detected.
        unsafe { maxabs_avx2_impl(src) }
    }

    #[target_feature(enable = "avx2")]
    fn maxabs_avx2_impl(src: &[f32]) -> f32 {
        let chunks = src.len() / LANES;
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            // SAFETY: `c * 8 + 8 <= src.len()`, in bounds.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(c * LANES));
                acc = _mm256_max_ps(acc, core::arch::x86_64::_mm256_andnot_ps(sign, v));
            }
        }
        let mut lanes = [0.0f32; LANES];
        // SAFETY: `lanes` holds exactly one 8-lane store.
        unsafe {
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        }
        let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
        for &x in &src[chunks * LANES..] {
            m = m.max(x.abs());
        }
        m
    }
}
