//! Transformer attention substrate for the UniCAIM reproduction.
//!
//! The paper evaluates its KV-cache pruning algorithm on a 7B-parameter LLM
//! (LongChat-v1.5-7B-32k) over LongBench tasks. Running such a model is out
//! of scope for a self-contained Rust repository, so this crate provides the
//! pieces that the *pruning* evaluation actually needs:
//!
//! * small dense linear algebra ([`Matrix`], [`softmax_rows`], top-k utils),
//! * exact attention and KV-cache storage ([`MultiHeadAttention`],
//!   [`KvStore`]),
//! * a deterministic, seeded [`TinyTransformer`] that produces
//!   realistically structured attention (sink tokens, locality, heavy
//!   hitters),
//! * long-context retrieval [`workloads`] with *ground-truth salient sets*
//!   so retrieval F1 is exactly measurable (single-needle, multi-hop
//!   "HotpotQA-like", diffuse "NarrativeQA-like"),
//! * [`llama`] — analytic Llama-2-7B KV-cache size / attention-latency
//!   curves (paper Fig. 1b).
//!
//! # Quickstart
//!
//! ```
//! use unicaim_attention::{Matrix, softmax_rows};
//!
//! let mut scores = Matrix::from_rows(&[vec![0.0, 1.0, 2.0]]);
//! softmax_rows(&mut scores);
//! let row: f32 = scores.row(0).iter().sum();
//! assert!((row - 1.0).abs() < 1e-6);
//! ```

// `deny` rather than `forbid`: the SIMD backend module scopes a single
// `#![allow(unsafe_code)]` around its feature-gated intrinsics; every
// other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod kv;
pub mod llama;
mod matrix;
pub mod metrics;
mod mha;
pub mod paged;
mod simd;
mod transformer;
pub mod workloads;

pub use kernels::{active_backend, KernelBackend};
pub use kv::{KvEntry, KvStore, Precision};
pub use matrix::{argtop_k, layer_norm_in_place, softmax_in_place, softmax_rows, Matrix};
pub use mha::{attention_output, attention_scores, AttentionConfig, MultiHeadAttention};
pub use paged::{
    ArenaStats, Page, PageArena, PageHandle, PagedQuantRows, PagedRows, DEFAULT_PAGE_ROWS,
};
pub use transformer::{TinyTransformer, TransformerConfig};

/// Errors reported by the attention substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum AttentionError {
    /// Matrix dimensions were incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation and offending shapes.
        context: String,
    },
    /// An index was out of bounds.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A token id was written into a [`KvStore`] while already resident in
    /// a different slot (token ids must be unique across occupied slots).
    DuplicateToken {
        /// The duplicated token id.
        token: usize,
        /// The slot already holding it.
        slot: usize,
    },
}

impl core::fmt::Display for AttentionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttentionError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            AttentionError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            AttentionError::DuplicateToken { token, slot } => {
                write!(f, "token {token} is already resident in slot {slot}")
            }
        }
    }
}

impl std::error::Error for AttentionError {}
