//! Flat-layout compute kernels for the decode hot path.
//!
//! Every hot loop in the decode pipeline — prefill attention, per-step
//! scoring, exact attention over a selection, and top-k selection — runs
//! over contiguous row-major arenas through this module instead of
//! pointer-chasing `Vec<Vec<f32>>` layouts. The kernels are deliberately
//! allocation-free: callers pass output slices and reusable scratch
//! buffers, so a steady-state decode step performs no heap traffic.
//!
//! Layout convention: a [`RowView`] describes `n` logical rows of `dim`
//! contiguous `f32`s inside a flat buffer, with consecutive rows `stride`
//! elements apart (`stride >= dim`). A plain matrix is `stride == dim`; a
//! per-head slice of a multi-head projection is `stride == d_model`,
//! `dim == d_head`, with the head offset folded into the buffer slice.
//!
//! The kernels themselves are generic over the [`Rows`] / [`QuantRows`]
//! access traits: every row is one contiguous slice, but consecutive rows
//! need not be — the paged views
//! ([`PagedRows`](crate::paged::PagedRows),
//! [`PagedQuantRows`](crate::paged::PagedQuantRows)) resolve each logical
//! row into its page, so the same gather/attend kernels walk flat arenas
//! and non-contiguous page tables alike (scalar parity between the two is
//! property-tested).
//!
//! Ordering convention: all top-k selection in this module uses
//! [`f32::total_cmp`] with an explicit ascending-index tie-break, so
//! rankings are total and deterministic even in the presence of NaN
//! (NaN sorts as the largest value, per IEEE 754 `totalOrder`).
//!
//! # Backend dispatch and the determinism contract
//!
//! Every kernel in the menu dispatches over a [`KernelBackend`] detected
//! once per process (`is_x86_feature_detected!`, overridable with
//! `UNICAIM_KERNEL_BACKEND=scalar|sse2|avx2`). Each kernel also exposes a
//! `*_with(backend, …)` twin taking the tier explicitly, which the parity
//! tests use to pin every tier against scalar. The contract:
//!
//! * **Integer paths are bit-exact across every tier.** [`dot_i8`] widens
//!   `i8 → i16 → i32` with no rounding, so the quantized scoring kernels'
//!   integer accumulation — and the quantizers [`quantize_row_i8`] /
//!   [`quantize_row_cell3`], whose SIMD portion is only the exact max-abs
//!   reduction — produce identical bits on scalar, SSE2, and AVX2.
//! * **f32 paths are bounded-ulp and stable for a fixed tier.** The SSE2
//!   tier is bit-identical to scalar by construction (same eight-lane
//!   accumulator partition, same multiply-then-add per element, same
//!   reduction order). The AVX2+FMA tier fuses multiply-add, skipping the
//!   per-product rounding: for a length-`n` dot,
//!   `|dot_avx2 − dot_scalar| ≤ 2·n·ε·Σ|aᵢ·bᵢ|` with `ε = 2⁻²⁴` (each
//!   path's forward error versus the exact sum is at most `n·ε·Σ|aᵢ·bᵢ|`
//!   to first order — standard recursive-summation analysis — and FMA
//!   only removes rounding steps). Softmax is shared scalar code on every
//!   tier. For a fixed tier, every kernel is deterministic: same inputs,
//!   same bits, run to run and thread count to thread count.
//! * **Chunked kernels only partition work.** [`dot_gather_chunked`] /
//!   [`dot_gather_q_chunked`] split the gather into fixed-size chunks,
//!   each writing a disjoint output range with the same per-row kernel,
//!   so results are bit-identical for every worker count and chunk size.
//!
//! `UNICAIM_KERNEL_BACKEND=scalar` therefore reproduces the pre-dispatch
//! kernel layer bit-for-bit.

use std::sync::{Mutex, OnceLock};

use crate::matrix::softmax_in_place;

/// Environment variable forcing a kernel tier
/// (`scalar`, `sse2`, or `avx2`); empty or unset means "detect".
/// Unknown or unsupported values warn on stderr and fall back to the
/// detected tier. Read once per process — changing it after the first
/// kernel call has no effect.
pub const BACKEND_ENV: &str = "UNICAIM_KERNEL_BACKEND";

/// A SIMD tier the kernel layer can dispatch to.
///
/// Tiers are strictly host-gated: [`KernelBackend::detect`] picks the best
/// tier the CPU supports, and explicit requests (via [`BACKEND_ENV`] or the
/// `*_with` kernels) for an unsupported tier clamp to [`KernelBackend::Scalar`]
/// (`KernelBackend::Scalar`), so an unsupported instruction can never be
/// reached. On non-x86_64 hosts (e.g. aarch64, where a NEON tier is a
/// future extension) every tier except scalar reports unsupported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar kernels — the reference semantics for every tier.
    Scalar,
    /// SSE2 (baseline x86_64): bit-identical to scalar on f32 paths.
    Sse2,
    /// AVX2 + FMA: fused f32 paths, bounded-ulp versus scalar.
    Avx2,
}

impl KernelBackend {
    /// Every tier, scalar first.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
    ];

    /// The best tier this CPU supports, detected via
    /// `is_x86_feature_detected!` (AVX2 requires FMA too; non-x86_64
    /// hosts always detect scalar).
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return KernelBackend::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return KernelBackend::Sse2;
            }
        }
        KernelBackend::Scalar
    }

    /// Stable lowercase name (also the [`BACKEND_ENV`] spelling).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Parses a [`BACKEND_ENV`] value (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "sse2" => Some(KernelBackend::Sse2),
            "avx2" => Some(KernelBackend::Avx2),
            _ => None,
        }
    }

    /// Whether this CPU can run the tier.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The tiers this CPU supports, scalar first — what the parity tests
    /// iterate.
    #[must_use]
    pub fn supported() -> Vec<Self> {
        Self::ALL.into_iter().filter(|b| b.is_supported()).collect()
    }

    /// Clamps an unsupported tier to scalar so dispatch can never select
    /// an instruction set the CPU lacks.
    fn clamp(self) -> Self {
        if self.is_supported() {
            self
        } else {
            KernelBackend::Scalar
        }
    }
}

/// The process-wide kernel tier: [`BACKEND_ENV`] if set and valid,
/// otherwise [`KernelBackend::detect`]. Resolved once and cached — every
/// un-suffixed kernel in this module dispatches through it.
#[must_use]
pub fn active_backend() -> KernelBackend {
    static ACTIVE: OnceLock<KernelBackend> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var(BACKEND_ENV) {
        Ok(raw) if !raw.trim().is_empty() => {
            let name = raw.trim();
            let detected = KernelBackend::detect();
            match KernelBackend::from_name(name) {
                Some(requested) if requested.is_supported() => requested,
                Some(requested) => {
                    eprintln!(
                        "warning: {BACKEND_ENV}={name} requests the {} tier, which this CPU \
                         does not support; using detected tier {}",
                        requested.label(),
                        detected.label()
                    );
                    detected
                }
                None => {
                    eprintln!(
                        "warning: {BACKEND_ENV}={name} is not one of scalar|sse2|avx2; \
                         using detected tier {}",
                        detected.label()
                    );
                    detected
                }
            }
        }
        _ => KernelBackend::detect(),
    })
}

// ---------------------------------------------------------------------
// Primitive dispatch: each tier supplies four primitives (f32 dot, i8
// dot, axpy, max-abs); everything else in the menu is composed from them
// plus shared scalar code, so the parity argument stays small.
// ---------------------------------------------------------------------

type DotF32Fn = fn(&[f32], &[f32]) -> f32;
type DotI8Fn = fn(&[i8], &[i8]) -> i32;
type AxpyFn = fn(f32, &[f32], &mut [f32]);
type MaxAbsFn = fn(&[f32]) -> f32;

fn dot_f32_fn(backend: KernelBackend) -> DotF32Fn {
    match backend.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => crate::simd::dot_f32_sse2,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => crate::simd::dot_f32_avx2,
        _ => dot_scalar,
    }
}

fn dot_i8_fn(backend: KernelBackend) -> DotI8Fn {
    match backend.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => crate::simd::dot_i8_sse2,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => crate::simd::dot_i8_avx2,
        _ => dot_i8_scalar,
    }
}

fn axpy_fn(backend: KernelBackend) -> AxpyFn {
    match backend.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => crate::simd::axpy_sse2,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => crate::simd::axpy_avx2,
        _ => axpy_scalar,
    }
}

fn maxabs_fn(backend: KernelBackend) -> MaxAbsFn {
    match backend.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => crate::simd::maxabs_sse2,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => crate::simd::maxabs_avx2,
        _ => maxabs_scalar,
    }
}

/// A borrowed view of row-major `f32` rows inside a flat buffer.
///
/// Row `r` is `data[r * stride .. r * stride + dim]`. The view itself does
/// not fix a row count; accessors bound-check through the underlying slice.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    data: &'a [f32],
    stride: usize,
    dim: usize,
}

impl<'a> RowView<'a> {
    /// Creates a view with the given row stride and logical row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim > stride`, or if `stride == 0` while `dim != 0`.
    #[must_use]
    pub fn new(data: &'a [f32], stride: usize, dim: usize) -> Self {
        assert!(
            dim <= stride || dim == 0,
            "row dim {dim} exceeds stride {stride}"
        );
        assert!(stride > 0 || dim == 0, "zero stride with nonzero dim");
        Self { data, stride, dim }
    }

    /// A contiguous view (`stride == dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`: a zero-dim contiguous view would give every
    /// row the same empty slice, silently aliasing all rows instead of
    /// surfacing the degenerate shape at the call site.
    #[must_use]
    pub fn contiguous(data: &'a [f32], dim: usize) -> Self {
        assert!(dim > 0, "contiguous RowView requires dim > 0");
        Self::new(data, dim, dim)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row extends past the underlying buffer.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }
}

/// Row-addressable `f32` rows: the access contract the gather/attend
/// kernels read keys and values through. Each row is one contiguous
/// slice of length [`Rows::dim`], but consecutive rows need not be
/// adjacent in memory — the flat [`RowView`] strides through one buffer
/// while the paged [`PagedRows`](crate::paged::PagedRows) resolves each
/// row into its page. Implementations are cheap `Copy` views, so kernels
/// take them by value.
pub trait Rows: Copy {
    /// Logical row width.
    fn dim(&self) -> usize;
    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn row(&self, r: usize) -> &[f32];
}

impl Rows for RowView<'_> {
    fn dim(&self) -> usize {
        RowView::dim(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        RowView::row(self, r)
    }
}

/// The quantized twin of [`Rows`]: row-addressable `i8` levels with one
/// `f32` dequantization scale per row. Implemented by the flat
/// [`QuantRowView`] and the paged
/// [`PagedQuantRows`](crate::paged::PagedQuantRows).
pub trait QuantRows: Copy {
    /// Logical row width.
    fn dim(&self) -> usize;
    /// Borrow the integer levels of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn row(&self, r: usize) -> &[i8];
    /// The dequantization scale of row `r` (`value = scale · level`).
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn scale(&self, r: usize) -> f32;
}

impl QuantRows for QuantRowView<'_> {
    fn dim(&self) -> usize {
        QuantRowView::dim(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[i8] {
        QuantRowView::row(self, r)
    }
    #[inline]
    fn scale(&self, r: usize) -> f32 {
        QuantRowView::scale(self, r)
    }
}

/// Number of independent accumulators in [`dot`]. Wide enough for the
/// compiler to keep the loop in vector registers; the SIMD tiers keep the
/// same 8-lane accumulator partition so their reductions line up with
/// scalar (see the module docs).
pub(crate) const LANES: usize = 8;

/// Scalar f32 dot with `LANES` independent accumulators — the reference
/// semantics every tier's f32 dot is measured against.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let ax = &a[c * LANES..(c + 1) * LANES];
        let bx = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += ax[l] * bx[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..n {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// Scalar `out[i] += w · x[i]` — the reference semantics for every tier's
/// weighted-sum accumulation.
fn axpy_scalar(w: f32, x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += w * v;
    }
}

/// Scalar max-abs fold — the reference semantics for the quantizers'
/// range pass.
fn maxabs_scalar(src: &[f32]) -> f32 {
    src.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Dot product with `LANES` independent accumulators (reassociated
/// summation — results can differ from a strictly sequential sum in the
/// last bits, which every consumer tolerates at ≤1e-5 relative error).
/// Dispatches over [`active_backend`]; see [`dot_with`].
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active_backend(), a, b)
}

/// [`dot`] on an explicit tier. SSE2 is bit-identical to scalar; AVX2 is
/// within `2·n·ε·Σ|aᵢ·bᵢ|` of scalar (`ε = 2⁻²⁴`; module docs derive the
/// bound).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot_with(backend: KernelBackend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    dot_f32_fn(backend)(a, b)
}

/// Scaled dots of `query` against rows `0..out.len()` of `keys`:
/// `out[r] = scale · (query · keys[r])`.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix<K: Rows>(query: &[f32], keys: K, scale: f32, out: &mut [f32]) {
    dot_prefix_with(active_backend(), query, keys, scale, out);
}

/// [`dot_prefix`] on an explicit tier.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix_with<K: Rows>(
    backend: KernelBackend,
    query: &[f32],
    keys: K,
    scale: f32,
    out: &mut [f32],
) {
    let dot = dot_f32_fn(backend);
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Scaled dots of `query` against the gathered `rows` of `keys`:
/// `out[i] = scale · (query · keys[rows[i]])`.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather<K: Rows>(query: &[f32], keys: K, rows: &[usize], scale: f32, out: &mut [f32]) {
    dot_gather_with(active_backend(), query, keys, rows, scale, out);
}

/// [`dot_gather`] on an explicit tier.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather_with<K: Rows>(
    backend: KernelBackend,
    query: &[f32],
    keys: K,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    let dot = dot_f32_fn(backend);
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Accumulates `out += Σ weights[i] · values[rows[i]]` over gathered rows
/// (callers zero `out` first; [`attend_gather`] does).
///
/// # Panics
///
/// Panics if `out.len() != values.dim()` or lengths disagree.
pub fn weighted_sum_gather<V: Rows>(weights: &[f32], values: V, rows: &[usize], out: &mut [f32]) {
    weighted_sum_gather_with(active_backend(), weights, values, rows, out);
}

/// [`weighted_sum_gather`] on an explicit tier.
///
/// # Panics
///
/// Panics if `out.len() != values.dim()` or lengths disagree.
pub fn weighted_sum_gather_with<V: Rows>(
    backend: KernelBackend,
    weights: &[f32],
    values: V,
    rows: &[usize],
    out: &mut [f32],
) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    assert_eq!(weights.len(), rows.len(), "weight/row count mismatch");
    let axpy = axpy_fn(backend);
    for (&r, &w) in rows.iter().zip(weights) {
        axpy(w, values.row(r), out);
    }
}

/// Accumulates `out += Σ weights[r] · values[r]` over rows
/// `0..weights.len()`.
///
/// # Panics
///
/// Panics if `out.len() != values.dim()`.
pub fn weighted_sum_prefix<V: Rows>(weights: &[f32], values: V, out: &mut [f32]) {
    weighted_sum_prefix_with(active_backend(), weights, values, out);
}

/// [`weighted_sum_prefix`] on an explicit tier.
///
/// # Panics
///
/// Panics if `out.len() != values.dim()`.
pub fn weighted_sum_prefix_with<V: Rows>(
    backend: KernelBackend,
    weights: &[f32],
    values: V,
    out: &mut [f32],
) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    let axpy = axpy_fn(backend);
    for (r, &w) in weights.iter().enumerate() {
        axpy(w, values.row(r), out);
    }
}

/// Fused gather → score → softmax → weighted-sum attention over the
/// gathered `rows`: `out = softmax(scale · q·Kᵀ) · V`, writing into `out`
/// and reusing `weights` as scratch. An empty gather writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_gather<K: Rows, V: Rows>(
    query: &[f32],
    keys: K,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_gather_with(
        active_backend(),
        query,
        keys,
        values,
        rows,
        scale,
        weights,
        out,
    );
}

/// [`attend_gather`] on an explicit tier (softmax is shared scalar code
/// on every tier).
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_gather_with<K: Rows, V: Rows>(
    backend: KernelBackend,
    query: &[f32],
    keys: K,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if rows.is_empty() {
        return;
    }
    weights.clear();
    weights.resize(rows.len(), 0.0);
    dot_gather_with(backend, query, keys, rows, scale, weights);
    softmax_in_place(weights);
    weighted_sum_gather_with(backend, weights, values, rows, out);
}

/// Fused attention over the contiguous row prefix `0..n` (the causal
/// "attend to everything so far" step): `out = softmax(scale · q·Kᵀ) · V`.
/// `n == 0` writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_prefix<K: Rows, V: Rows>(
    query: &[f32],
    keys: K,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_prefix_with(
        active_backend(),
        query,
        keys,
        values,
        n,
        scale,
        weights,
        out,
    );
}

/// [`attend_prefix`] on an explicit tier.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_prefix_with<K: Rows, V: Rows>(
    backend: KernelBackend,
    query: &[f32],
    keys: K,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    weights.clear();
    weights.resize(n, 0.0);
    dot_prefix_with(backend, query, keys, scale, weights);
    softmax_in_place(weights);
    weighted_sum_prefix_with(backend, weights, values, out);
}

/// A borrowed view of row-major `i8` rows with one `f32` scale per row:
/// the quantized twin of [`RowView`].
///
/// Row `r` holds `dim` signed integer levels at
/// `data[r * stride .. r * stride + dim]`; its real value is
/// `scales[r] · data[r][i]`. This is the layout of the quantized key arena
/// ([`KvStore::quant_keys_view`](crate::KvStore::quant_keys_view)): 1 byte
/// per element plus one scale per row, a ~4× traffic reduction over the
/// `f32` arena that mirrors the UniCAIM array's reduced-precision cells.
#[derive(Debug, Clone, Copy)]
pub struct QuantRowView<'a> {
    data: &'a [i8],
    scales: &'a [f32],
    stride: usize,
    dim: usize,
}

impl<'a> QuantRowView<'a> {
    /// Creates a view with the given row stride and logical row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > stride` (same degenerate-shape
    /// contract as [`RowView::contiguous`]).
    #[must_use]
    pub fn new(data: &'a [i8], scales: &'a [f32], stride: usize, dim: usize) -> Self {
        assert!(dim > 0, "QuantRowView requires dim > 0");
        assert!(dim <= stride, "row dim {dim} exceeds stride {stride}");
        Self {
            data,
            scales,
            stride,
            dim,
        }
    }

    /// A contiguous view (`stride == dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn contiguous(data: &'a [i8], scales: &'a [f32], dim: usize) -> Self {
        Self::new(data, scales, dim, dim)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow the integer levels of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row extends past the underlying buffer.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [i8] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }

    /// The dequantization scale of row `r` (`value = scale · level`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range of the scale vector.
    #[inline]
    #[must_use]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }
}

/// Quantization steps per side of zero for [`quantize_row_i8`]: the
/// symmetric `i8` range `−127 … +127` (−128 is never produced).
pub const INT8_STEPS: f32 = 127.0;

/// Quantization steps per side of zero for [`quantize_row_cell3`]: levels
/// `−2 … +2` map to the 3-bit multilevel cell's five signed weights
/// {−1, −0.5, 0, +0.5, +1} (times the row scale).
pub const CELL3_STEPS: f32 = 2.0;

/// Shared symmetric per-row quantizer: max-abs scaling to `±steps` integer
/// levels, round-to-nearest. Returns `scale` such that
/// `src[i] ≈ scale · out[i]`; an all-zero row quantizes to zeros with
/// scale 0.
///
/// Only the (exact) max-abs reduction dispatches to SIMD; the
/// divide/round/cast loop stays scalar because `f32::round` is
/// round-half-away-from-zero, which vector instructions do not implement
/// directly — keeping it scalar makes quantization bit-exact on every
/// tier for finite inputs.
fn quantize_row_with_backend(
    backend: KernelBackend,
    src: &[f32],
    steps: f32,
    out: &mut [i8],
) -> f32 {
    assert_eq!(src.len(), out.len(), "quantize output length mismatch");
    let maxabs = maxabs_fn(backend)(src);
    if maxabs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = maxabs / steps;
    for (o, &x) in out.iter_mut().zip(src) {
        // |x| ≤ maxabs so |x/scale| ≤ steps ≤ 127: the cast cannot wrap
        // (and saturates defensively on non-finite input).
        *o = (x / scale).round() as i8;
    }
    scale
}

/// Quantizes one row to `i8` with symmetric per-row max-abs scaling
/// (`±127` levels). Returns the scale; round-trip error per element is at
/// most `scale / 2 = maxabs / 254`.
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_i8(src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row_i8_with(active_backend(), src, out)
}

/// [`quantize_row_i8`] on an explicit tier (bit-exact on every tier for
/// finite inputs).
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_i8_with(backend: KernelBackend, src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row_with_backend(backend, src, INT8_STEPS, out)
}

/// Snaps one row to the 3-bit multilevel cell's five signed levels
/// {−1, −0.5, 0, +0.5, +1} scaled by the row max-abs, stored as integer
/// levels `−2 … +2`. Returns the scale (`maxabs / 2`).
///
/// The snap is idempotent: re-quantizing the dequantized row reproduces
/// the same levels and scale (the max-abs element always lands on `±2`,
/// so the scale is preserved exactly).
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_cell3(src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row_cell3_with(active_backend(), src, out)
}

/// [`quantize_row_cell3`] on an explicit tier (bit-exact on every tier
/// for finite inputs).
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_cell3_with(backend: KernelBackend, src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row_with_backend(backend, src, CELL3_STEPS, out)
}

/// Quantizes a contiguous row-major `f32` arena (`src.len() / dim` rows)
/// to `i8` with one scale per row — the bulk form of [`quantize_row_i8`],
/// producing exactly the layout [`QuantRowView::contiguous`] reads.
///
/// Allocates fresh vectors; steady-state callers (prefill, requantize,
/// benchmarks) should prefer [`quantize_arena_i8_into`], which reuses
/// caller scratch.
///
/// # Panics
///
/// Panics if `dim == 0` or `src.len()` is not a multiple of `dim`.
#[must_use]
pub fn quantize_arena_i8(src: &[f32], dim: usize) -> (Vec<i8>, Vec<f32>) {
    let mut q = Vec::new();
    let mut scales = Vec::new();
    quantize_arena_i8_into(src, dim, &mut q, &mut scales);
    (q, scales)
}

/// Scratch-reusing form of [`quantize_arena_i8`]: clears and refills `q`
/// and `scales` in place (reusing their capacity), so a loop that
/// repeatedly quantizes arenas performs no steady-state allocation.
///
/// # Panics
///
/// Panics if `dim == 0` or `src.len()` is not a multiple of `dim`.
pub fn quantize_arena_i8_into(src: &[f32], dim: usize, q: &mut Vec<i8>, scales: &mut Vec<f32>) {
    quantize_arena_i8_into_with(active_backend(), src, dim, q, scales);
}

/// [`quantize_arena_i8_into`] on an explicit tier (the i8 quantizer is
/// bit-identical across tiers for finite inputs, so the twin exists for
/// uniformity with the rest of the kernel facade).
///
/// # Panics
///
/// Panics if `dim == 0` or `src.len()` is not a multiple of `dim`.
pub fn quantize_arena_i8_into_with(
    backend: KernelBackend,
    src: &[f32],
    dim: usize,
    q: &mut Vec<i8>,
    scales: &mut Vec<f32>,
) {
    assert!(dim > 0, "quantize_arena_i8 requires dim > 0");
    assert!(
        src.len().is_multiple_of(dim),
        "arena length {} is not a multiple of dim {dim}",
        src.len()
    );
    let rows = src.len() / dim;
    q.clear();
    q.resize(src.len(), 0);
    scales.clear();
    scales.resize(rows, 0.0);
    for r in 0..rows {
        scales[r] = quantize_row_i8_with(
            backend,
            &src[r * dim..(r + 1) * dim],
            &mut q[r * dim..(r + 1) * dim],
        );
    }
}

/// Dequantizes integer levels back to `f32`: `out[i] = scale · q[i]`.
///
/// # Panics
///
/// Panics if `q.len() != out.len()`.
pub fn dequantize_row(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "dequantize output length mismatch");
    for (o, &v) in out.iter_mut().zip(q) {
        *o = scale * f32::from(v);
    }
}

/// Scalar integer dot with `LANES` independent `i32` accumulators — the
/// reference semantics (and exact result) every tier reproduces.
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0i32; LANES];
    for c in 0..chunks {
        let ax = &a[c * LANES..(c + 1) * LANES];
        let bx = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += i32::from(ax[l]) * i32::from(bx[l]);
        }
    }
    let mut tail = 0i32;
    for i in chunks * LANES..n {
        tail += i32::from(a[i]) * i32::from(b[i]);
    }
    acc.iter().sum::<i32>() + tail
}

/// Integer dot product with `LANES` independent `i32` accumulators — the
/// quantized twin of [`dot`]. Exact (no rounding): `|a·b| ≤ 127²·dim`
/// stays far inside `i32` for any realistic head dimension, so every
/// backend tier returns identical bits.
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_with(active_backend(), a, b)
}

/// [`dot_i8`] on an explicit tier (bit-exact on every tier).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot_i8_with(backend: KernelBackend, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    dot_i8_fn(backend)(a, b)
}

/// Quantized twin of [`dot_prefix`]: scaled dots of a pre-quantized query
/// against rows `0..out.len()` of the quantized key arena. The integer
/// dot accumulates in `i32`; the combined rescale
/// (`scale · query_scale · keys.scale(r)`) is applied **once per row**.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix_q<Q: QuantRows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    scale: f32,
    out: &mut [f32],
) {
    dot_prefix_q_with(active_backend(), query_q, query_scale, keys, scale, out);
}

/// [`dot_prefix_q`] on an explicit tier (bit-exact on every tier: the
/// integer dot is exact and the rescale is shared scalar code).
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix_q_with<Q: QuantRows>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    scale: f32,
    out: &mut [f32],
) {
    let dot = dot_i8_fn(backend);
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(query_q, keys.row(r)) as f32 * (scale * query_scale * keys.scale(r));
    }
}

/// Quantized twin of [`dot_gather`]: scaled dots of a pre-quantized query
/// against the gathered `rows` of the quantized key arena, rescaled once
/// per row.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather_q<Q: QuantRows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
) {
    dot_gather_q_with(
        active_backend(),
        query_q,
        query_scale,
        keys,
        rows,
        scale,
        out,
    );
}

/// [`dot_gather_q`] on an explicit tier (bit-exact on every tier).
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather_q_with<Q: QuantRows>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    let dot = dot_i8_fn(backend);
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot(query_q, keys.row(r)) as f32 * (scale * query_scale * keys.scale(r));
    }
}

/// Quantized twin of [`attend_gather`]: fused gather → quantized score →
/// softmax → weighted-sum attention. Keys are scored from the quantized
/// arena (the deployed precision); values stay `f32`, mirroring the
/// UniCAIM array where only the CAM/CIM key storage is reduced-precision.
/// An empty gather writes a zero vector.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_gather_q<Q: QuantRows, V: Rows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_gather_q_with(
        active_backend(),
        query_q,
        query_scale,
        keys,
        values,
        rows,
        scale,
        weights,
        out,
    );
}

/// [`attend_gather_q`] on an explicit tier.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_gather_q_with<Q: QuantRows, V: Rows>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query_q.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if rows.is_empty() {
        return;
    }
    weights.clear();
    weights.resize(rows.len(), 0.0);
    dot_gather_q_with(backend, query_q, query_scale, keys, rows, scale, weights);
    softmax_in_place(weights);
    weighted_sum_gather_with(backend, weights, values, rows, out);
}

/// Quantized twin of [`attend_prefix`]: fused attention over the
/// contiguous row prefix `0..n`, scoring from the quantized key arena with
/// `f32` values. `n == 0` writes a zero vector.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_prefix_q<Q: QuantRows, V: Rows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_prefix_q_with(
        active_backend(),
        query_q,
        query_scale,
        keys,
        values,
        n,
        scale,
        weights,
        out,
    );
}

/// [`attend_prefix_q`] on an explicit tier.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_prefix_q_with<Q: QuantRows, V: Rows>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query_q.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    weights.clear();
    weights.resize(n, 0.0);
    dot_prefix_q_with(backend, query_q, query_scale, keys, scale, weights);
    softmax_in_place(weights);
    weighted_sum_prefix_with(backend, weights, values, out);
}

// ---------------------------------------------------------------------
// Chunked intra-sequence fan-out
// ---------------------------------------------------------------------

/// Default chunk size (in rows) for the chunked gather kernels — the
/// granule the decode session splits its resident scan into.
pub const DEFAULT_SCAN_CHUNK: usize = 128;

/// [`dot_gather`] with the gather split into fixed `chunk_rows`-sized
/// chunks fanned out over up to `workers` threads. Each chunk writes its
/// own disjoint range of `out` with the same per-row kernel, so the
/// result is **bit-identical for every worker count and chunk size**
/// (only the work partition changes); `workers <= 1` or a gather that
/// fits one chunk runs inline with no thread traffic.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, `chunk_rows == 0`, or a row is
/// out of range.
pub fn dot_gather_chunked<K: Rows + Sync>(
    query: &[f32],
    keys: K,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
    chunk_rows: usize,
    workers: usize,
) {
    dot_gather_chunked_with(
        active_backend(),
        query,
        keys,
        rows,
        scale,
        out,
        chunk_rows,
        workers,
    );
}

/// [`dot_gather_chunked`] on an explicit tier (the partition is
/// bit-inert, so the tier alone decides the numerics — same contract as
/// [`dot_gather_with`]).
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, `chunk_rows == 0`, or a row is
/// out of range.
#[allow(clippy::too_many_arguments)]
pub fn dot_gather_chunked_with<K: Rows + Sync>(
    backend: KernelBackend,
    query: &[f32],
    keys: K,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
    chunk_rows: usize,
    workers: usize,
) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    if workers <= 1 || rows.len() <= chunk_rows {
        dot_gather_with(backend, query, keys, rows, scale, out);
        return;
    }
    let threads = workers.min(rows.len().div_ceil(chunk_rows));
    let jobs = Mutex::new(rows.chunks(chunk_rows).zip(out.chunks_mut(chunk_rows)));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // A worker panicking mid-chunk poisons the queue but leaves
                // the iterator consistent; recover and drain the rest (the
                // panic itself still propagates when the scope joins).
                let job = jobs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .next();
                let Some((rows_c, out_c)) = job else { break };
                dot_gather_with(backend, query, keys, rows_c, scale, out_c);
            });
        }
    });
}

/// Per-row quantized scoring with the **resident-scan rescale order**:
/// `raw · ((query_scale · keys.scale(r)) · scale)` — the association the
/// decode session has always used, which differs from [`dot_gather_q`]'s
/// `(scale · query_scale) · keys.scale(r)` in the last bits. Keeping it
/// pinned here is what lets `UNICAIM_KERNEL_BACKEND=scalar` reproduce
/// pre-dispatch decode trajectories bit-for-bit.
fn dot_gather_q_scan<Q: QuantRows>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
) {
    let dot = dot_i8_fn(backend);
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot(query_q, keys.row(r)) as f32 * (query_scale * keys.scale(r) * scale);
    }
}

/// Quantized twin of [`dot_gather_chunked`], using the resident-scan
/// rescale order `(query_scale · keys.scale(r)) · scale` (see the note on
/// the internal scan kernel: this is the decode session's historical
/// association, so scalar-tier decode stays bit-compatible with the
/// pre-dispatch kernel layer). Bit-identical for every worker count and
/// chunk size, and — because the integer dot is exact and the rescale is
/// shared scalar code — across every backend tier too.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, `chunk_rows == 0`, or a row is
/// out of range.
#[allow(clippy::too_many_arguments)]
pub fn dot_gather_q_chunked<Q: QuantRows + Sync>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
    chunk_rows: usize,
    workers: usize,
) {
    dot_gather_q_chunked_with(
        active_backend(),
        query_q,
        query_scale,
        keys,
        rows,
        scale,
        out,
        chunk_rows,
        workers,
    );
}

/// [`dot_gather_q_chunked`] on an explicit tier (exact integer dots, so
/// every tier is bit-identical — the twin pins the tier for parity
/// tests).
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, `chunk_rows == 0`, or a row is
/// out of range.
#[allow(clippy::too_many_arguments)]
pub fn dot_gather_q_chunked_with<Q: QuantRows + Sync>(
    backend: KernelBackend,
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
    chunk_rows: usize,
    workers: usize,
) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    if workers <= 1 || rows.len() <= chunk_rows {
        dot_gather_q_scan(backend, query_q, query_scale, keys, rows, scale, out);
        return;
    }
    let threads = workers.min(rows.len().div_ceil(chunk_rows));
    let jobs = Mutex::new(rows.chunks(chunk_rows).zip(out.chunks_mut(chunk_rows)));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // See `dot_gather_chunked_with`: poison recovery keeps the
                // drain panic-free while the worker's panic still surfaces
                // at scope join.
                let job = jobs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .next();
                let Some((rows_c, out_c)) = job else { break };
                dot_gather_q_scan(backend, query_q, query_scale, keys, rows_c, scale, out_c);
            });
        }
    });
}

/// Indices `0..n` ranked best-first under `cmp` (where `Ordering::Less`
/// means "ranks earlier"), keeping only the top `k` — selected with
/// `select_nth_unstable_by` (O(n + k log k)) instead of a full sort.
///
/// The comparator must be a total order (use [`f32::total_cmp`] plus an
/// index tie-break); the returned prefix is then exactly the first `k`
/// elements of the fully sorted order.
pub fn partial_top_k_by<F>(n: usize, k: usize, mut cmp: F) -> Vec<usize>
where
    F: FnMut(usize, usize) -> std::cmp::Ordering,
{
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    if k < n {
        idx.select_nth_unstable_by(k - 1, |&a, &b| cmp(a, b));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| cmp(a, b));
    idx
}

/// Indices of the `k` largest values, in descending value order, ties
/// toward the lower index. Total and deterministic for every input:
/// NaN ranks above +∞ (IEEE 754 `totalOrder`), so NaN-poisoned scores
/// cannot make the ranking run-to-run unstable.
#[must_use]
pub fn partial_top_k(values: &[f32], k: usize) -> Vec<usize> {
    partial_top_k_by(values.len(), k, |a, b| {
        values[b].total_cmp(&values[a]).then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mha::attention_output;

    #[test]
    fn dot_matches_sequential() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| 1.5 - (i as f32) * 0.125).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() <= 1e-4 * naive.abs().max(1.0));
    }

    #[test]
    fn backend_names_roundtrip_and_scalar_is_always_supported() {
        for backend in KernelBackend::ALL {
            assert_eq!(KernelBackend::from_name(backend.label()), Some(backend));
        }
        assert_eq!(KernelBackend::from_name("AVX2"), Some(KernelBackend::Avx2));
        assert_eq!(KernelBackend::from_name("neon"), None);
        assert!(KernelBackend::Scalar.is_supported());
        assert!(KernelBackend::supported().contains(&KernelBackend::Scalar));
        assert!(active_backend().is_supported());
        assert!(KernelBackend::detect().is_supported());
    }

    #[test]
    fn unsupported_backend_clamps_to_scalar_dispatch() {
        // Whatever the host, asking every tier for a dot must run (clamp
        // guarantees unsupported tiers degrade to scalar, never UB) and
        // the scalar tier must equal the un-suffixed reference exactly
        // when it is the active backend's clamped target.
        let a: Vec<f32> = (0..19).map(|i| (i as f32) * 0.5 - 4.0).collect();
        let b: Vec<f32> = (0..19).map(|i| 2.0 - (i as f32) * 0.25).collect();
        let scalar = dot_with(KernelBackend::Scalar, &a, &b);
        for backend in KernelBackend::ALL {
            let d = dot_with(backend, &a, &b);
            assert!((d - scalar).abs() <= 1e-4 * scalar.abs().max(1.0));
        }
    }

    #[test]
    fn every_supported_tier_matches_scalar_i8_exactly() {
        let a: Vec<i8> = (0..133).map(|i| ((i * 37) % 255) as i8).collect();
        let b: Vec<i8> = (0..133).map(|i| ((i * 91) % 253) as i8).collect();
        let scalar = dot_i8_with(KernelBackend::Scalar, &a, &b);
        for backend in KernelBackend::supported() {
            assert_eq!(dot_i8_with(backend, &a, &b), scalar, "{}", backend.label());
        }
    }

    #[test]
    fn row_view_strided_access() {
        // 3 rows of stride 4, logical width 2, offset 1 folded into slice.
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = RowView::new(&data[1..], 4, 2);
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(1), &[5.0, 6.0]);
        assert_eq!(v.row(2), &[9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn row_view_rejects_wide_rows() {
        let data = [0.0f32; 8];
        let _ = RowView::new(&data, 2, 3);
    }

    #[test]
    fn attend_gather_matches_naive_attention() {
        let dim = 5;
        let n = 7;
        let keys: Vec<f32> = (0..n * dim).map(|i| ((i * 13) % 11) as f32 * 0.1).collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 9) as f32 * 0.2).collect();
        let query: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.3 - 0.5).collect();
        let rows = [0usize, 2, 5];
        let kr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &keys[r * dim..(r + 1) * dim])
            .collect();
        let vr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &values[r * dim..(r + 1) * dim])
            .collect();
        let naive = attention_output(&query, &kr, &vr);
        let mut out = vec![0.0f32; dim];
        let mut scratch = Vec::new();
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            1.0 / (dim as f32).sqrt(),
            &mut scratch,
            &mut out,
        );
        for (a, b) in out.iter().zip(&naive) {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "{out:?} vs {naive:?}"
            );
        }
    }

    #[test]
    fn attend_empty_selection_is_zero() {
        let keys = [1.0f32, 2.0];
        let values = [3.0f32, 4.0];
        let mut out = vec![7.0f32; 2];
        let mut scratch = Vec::new();
        attend_gather(
            &[1.0, 0.0],
            RowView::contiguous(&keys, 2),
            RowView::contiguous(&values, 2),
            &[],
            1.0,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn partial_top_k_matches_full_sort_under_ties() {
        let values = vec![0.5f32, 0.9, 0.5, 0.9, 0.1, 0.9];
        for k in 0..=values.len() + 1 {
            let mut full: Vec<usize> = (0..values.len()).collect();
            full.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
            full.truncate(k);
            assert_eq!(partial_top_k(&values, k), full, "k = {k}");
        }
    }

    #[test]
    fn partial_top_k_is_total_under_nan() {
        let values = vec![0.3f32, f32::NAN, 0.7, f32::NAN];
        let a = partial_top_k(&values, 2);
        let b = partial_top_k(&values, 2);
        assert_eq!(a, b);
        // NaN sorts above every finite value under totalOrder.
        assert_eq!(a, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn contiguous_rejects_zero_dim() {
        let data: [f32; 4] = [1.0, 2.0, 3.0, 4.0];
        let _ = RowView::contiguous(&data, 0);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn quant_contiguous_rejects_zero_dim() {
        let data: [i8; 4] = [1, 2, 3, 4];
        let scales: [f32; 1] = [1.0];
        let _ = QuantRowView::contiguous(&data, &scales, 0);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let src: Vec<f32> = (0..37).map(|i| (i as f32) * 0.37 - 6.0).collect();
        let mut q = vec![0i8; src.len()];
        let scale = quantize_row_i8(&src, &mut q);
        let mut back = vec![0.0f32; src.len()];
        dequantize_row(&q, scale, &mut back);
        for (x, y) in src.iter().zip(&back) {
            assert!(
                (x - y).abs() <= scale * 0.5 + 1e-6,
                "{x} vs {y} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantize_zero_row_has_zero_scale() {
        let src = [0.0f32; 5];
        let mut q = [1i8; 5];
        assert_eq!(quantize_row_i8(&src, &mut q), 0.0);
        assert_eq!(q, [0i8; 5]);
    }

    #[test]
    fn quantize_is_bit_exact_on_every_tier() {
        let src: Vec<f32> = (0..67)
            .map(|i| ((i * 29) % 31) as f32 * 0.17 - 2.0)
            .collect();
        let mut expect_q = vec![0i8; src.len()];
        let expect_scale = quantize_row_i8_with(KernelBackend::Scalar, &src, &mut expect_q);
        for backend in KernelBackend::supported() {
            let mut q = vec![0i8; src.len()];
            let scale = quantize_row_i8_with(backend, &src, &mut q);
            assert_eq!(
                scale.to_bits(),
                expect_scale.to_bits(),
                "{}",
                backend.label()
            );
            assert_eq!(q, expect_q, "{}", backend.label());
        }
    }

    #[test]
    fn arena_into_matches_allocating_form_and_reuses_capacity() {
        let dim = 9;
        let src: Vec<f32> = (0..6 * dim)
            .map(|i| ((i * 31) % 17) as f32 * 0.2 - 1.5)
            .collect();
        let (q0, s0) = quantize_arena_i8(&src, dim);
        let mut q = vec![7i8; 1024];
        let mut s = vec![9.0f32; 1024];
        let cap_q = q.capacity();
        let cap_s = s.capacity();
        quantize_arena_i8_into(&src, dim, &mut q, &mut s);
        assert_eq!(q, q0);
        assert_eq!(s, s0);
        assert_eq!(q.capacity(), cap_q, "scratch capacity must be reused");
        assert_eq!(s.capacity(), cap_s, "scratch capacity must be reused");
    }

    #[test]
    fn cell3_snap_uses_five_levels() {
        let src = [1.0f32, -1.0, 0.1, 0.6, -0.4];
        let mut q = [0i8; 5];
        let scale = quantize_row_cell3(&src, &mut q);
        assert!((scale - 0.5).abs() < 1e-9);
        assert_eq!(q, [2, -2, 0, 1, -1]);
    }

    #[test]
    fn dot_i8_matches_integer_reference() {
        let a: Vec<i8> = (0..37).map(|i| ((i * 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| ((i * 7) % 251) as i8).collect();
        let naive: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), naive);
    }

    #[test]
    fn dot_prefix_q_and_gather_q_agree() {
        let dim = 12;
        let n = 6;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 13) % 17) as f32 * 0.2 - 1.0)
            .collect();
        let (qkeys, scales) = quantize_arena_i8(&keys, dim);
        let view = QuantRowView::contiguous(&qkeys, &scales, dim);
        let query: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.1 - 0.5).collect();
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let mut a = vec![0.0f32; n];
        dot_prefix_q(&qq, qs, view, 2.0, &mut a);
        let rows: Vec<usize> = (0..n).collect();
        let mut b = vec![0.0f32; n];
        dot_gather_q(&qq, qs, view, &rows, 2.0, &mut b);
        assert_eq!(a, b);
        // And both stay close to the f32 kernel.
        let mut f = vec![0.0f32; n];
        dot_prefix(&query, RowView::contiguous(&keys, dim), 2.0, &mut f);
        for (x, y) in a.iter().zip(&f) {
            assert!((x - y).abs() <= 0.05 * y.abs().max(1.0), "{a:?} vs {f:?}");
        }
    }

    #[test]
    fn chunked_gather_is_identical_for_every_worker_count_and_chunk_size() {
        let dim = 13;
        let n = 57;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 23) % 19) as f32 * 0.15 - 1.2)
            .collect();
        let query: Vec<f32> = (0..dim).map(|i| 0.6 - (i as f32) * 0.07).collect();
        let view = RowView::contiguous(&keys, dim);
        let rows: Vec<usize> = (0..n).rev().collect();
        let mut reference = vec![0.0f32; n];
        dot_gather(&query, view, &rows, 0.5, &mut reference);
        for workers in [1usize, 2, 4] {
            for chunk in [1usize, 3, 8, 64] {
                let mut out = vec![0.0f32; n];
                dot_gather_chunked(&query, view, &rows, 0.5, &mut out, chunk, workers);
                assert_eq!(out, reference, "workers {workers} chunk {chunk}");
            }
        }
        // Quantized twin: same partition-invariance, including vs its own
        // sequential path.
        let (qkeys, scales) = quantize_arena_i8(&keys, dim);
        let qview = QuantRowView::contiguous(&qkeys, &scales, dim);
        let mut qq = vec![0i8; dim];
        let qscale = quantize_row_i8(&query, &mut qq);
        let mut q_reference = vec![0.0f32; n];
        dot_gather_q_chunked(&qq, qscale, qview, &rows, 0.5, &mut q_reference, 64, 1);
        for workers in [2usize, 4] {
            for chunk in [1usize, 3, 8] {
                let mut out = vec![0.0f32; n];
                dot_gather_q_chunked(&qq, qscale, qview, &rows, 0.5, &mut out, chunk, workers);
                assert_eq!(out, q_reference, "workers {workers} chunk {chunk}");
            }
        }
    }

    #[test]
    fn chunked_gather_handles_empty_rows() {
        let keys = [1.0f32, 2.0, 3.0, 4.0];
        let view = RowView::contiguous(&keys, 2);
        let mut out: Vec<f32> = Vec::new();
        dot_gather_chunked(&[1.0, 1.0], view, &[], 1.0, &mut out, 16, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn attend_gather_q_tracks_f32_attention() {
        let dim = 8;
        let n = 10;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 29) % 23) as f32 * 0.1 - 1.0)
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 19) as f32 * 0.2).collect();
        let query: Vec<f32> = (0..dim).map(|i| 0.4 - (i as f32) * 0.09).collect();
        let (qkeys, scales) = quantize_arena_i8(&keys, dim);
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let rows = [0usize, 3, 4, 7, 9];
        let scale = 1.0 / (dim as f32).sqrt();
        let (mut wq, mut wf) = (Vec::new(), Vec::new());
        let mut out_q = vec![0.0f32; dim];
        let mut out_f = vec![0.0f32; dim];
        attend_gather_q(
            &qq,
            qs,
            QuantRowView::contiguous(&qkeys, &scales, dim),
            RowView::contiguous(&values, dim),
            &rows,
            scale,
            &mut wq,
            &mut out_q,
        );
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            scale,
            &mut wf,
            &mut out_f,
        );
        for (a, b) in out_q.iter().zip(&out_f) {
            assert!(
                (a - b).abs() <= 0.05 * b.abs().max(1.0),
                "{out_q:?} vs {out_f:?}"
            );
        }
        // Empty gather is a deterministic zero vector, like the f32 twin.
        attend_gather_q(
            &qq,
            qs,
            QuantRowView::contiguous(&qkeys, &scales, dim),
            RowView::contiguous(&values, dim),
            &[],
            scale,
            &mut wq,
            &mut out_q,
        );
        assert_eq!(out_q, vec![0.0; dim]);
    }

    #[test]
    fn attend_prefix_q_matches_gather_over_full_prefix() {
        let dim = 6;
        let n = 5;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 3) % 11) as f32 * 0.3 - 1.2)
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 5) % 13) as f32 * 0.1).collect();
        let query = vec![0.5f32, -0.25, 0.75, 0.0, -1.0, 0.3];
        let mut qkeys = vec![0i8; n * dim];
        let mut scales = vec![0.0f32; n];
        for r in 0..n {
            scales[r] = quantize_row_cell3(
                &keys[r * dim..(r + 1) * dim],
                &mut qkeys[r * dim..(r + 1) * dim],
            );
        }
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let kview = QuantRowView::contiguous(&qkeys, &scales, dim);
        let vview = RowView::contiguous(&values, dim);
        let rows: Vec<usize> = (0..n).collect();
        let mut w1 = Vec::new();
        let mut w2 = Vec::new();
        let mut a = vec![0.0f32; dim];
        let mut b = vec![0.0f32; dim];
        attend_prefix_q(&qq, qs, kview, vview, n, 0.5, &mut w1, &mut a);
        attend_gather_q(&qq, qs, kview, vview, &rows, 0.5, &mut w2, &mut b);
        assert_eq!(a, b);
    }

    /// Regression (satellite): extreme-magnitude logits through the fused
    /// attention kernels must produce finite, normalized outputs — a naive
    /// (non-max-subtracted) softmax overflows `exp` to inf/NaN as soon as
    /// `|scale·q·k| ≳ 90`.
    #[test]
    fn attend_survives_extreme_logits() {
        let dim = 4;
        let n = 3;
        // Huge keys/queries: raw scores are ~±1e7, far past exp overflow.
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| if i % 2 == 0 { 3.0e3 } else { -3.0e3 })
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| (i % 5) as f32).collect();
        let query = vec![2.0e3f32, 1.0e3, -2.0e3, 1.5e3];
        let mut weights = Vec::new();
        let mut out = vec![0.0f32; dim];
        attend_prefix(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            n,
            1.0,
            &mut weights,
            &mut out,
        );
        assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        let sum: f32 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "weights not normalized: {weights:?}"
        );
        assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));

        let rows = [0usize, 2];
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            1.0,
            &mut weights,
            &mut out,
        );
        assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        let sum: f32 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "weights not normalized: {weights:?}"
        );
    }

    #[test]
    fn dot_prefix_and_gather_agree() {
        let dim = 4;
        let keys: Vec<f32> = (0..6 * dim).map(|i| i as f32 * 0.01).collect();
        let view = RowView::contiguous(&keys, dim);
        let q = [0.5f32, -0.5, 1.0, 0.25];
        let mut a = vec![0.0f32; 6];
        dot_prefix(&q, view, 2.0, &mut a);
        let rows: Vec<usize> = (0..6).collect();
        let mut b = vec![0.0f32; 6];
        dot_gather(&q, view, &rows, 2.0, &mut b);
        assert_eq!(a, b);
    }
}
