//! Flat-layout compute kernels for the decode hot path.
//!
//! Every hot loop in the decode pipeline — prefill attention, per-step
//! scoring, exact attention over a selection, and top-k selection — runs
//! over contiguous row-major arenas through this module instead of
//! pointer-chasing `Vec<Vec<f32>>` layouts. The kernels are deliberately
//! allocation-free: callers pass output slices and reusable scratch
//! buffers, so a steady-state decode step performs no heap traffic.
//!
//! Layout convention: a [`RowView`] describes `n` logical rows of `dim`
//! contiguous `f32`s inside a flat buffer, with consecutive rows `stride`
//! elements apart (`stride >= dim`). A plain matrix is `stride == dim`; a
//! per-head slice of a multi-head projection is `stride == d_model`,
//! `dim == d_head`, with the head offset folded into the buffer slice.
//!
//! Ordering convention: all top-k selection in this module uses
//! [`f32::total_cmp`] with an explicit ascending-index tie-break, so
//! rankings are total and deterministic even in the presence of NaN
//! (NaN sorts as the largest value, per IEEE 754 `totalOrder`).

use crate::matrix::softmax_in_place;

/// A borrowed view of row-major `f32` rows inside a flat buffer.
///
/// Row `r` is `data[r * stride .. r * stride + dim]`. The view itself does
/// not fix a row count; accessors bound-check through the underlying slice.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    data: &'a [f32],
    stride: usize,
    dim: usize,
}

impl<'a> RowView<'a> {
    /// Creates a view with the given row stride and logical row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim > stride`, or if `stride == 0` while `dim != 0`.
    #[must_use]
    pub fn new(data: &'a [f32], stride: usize, dim: usize) -> Self {
        assert!(
            dim <= stride || dim == 0,
            "row dim {dim} exceeds stride {stride}"
        );
        assert!(stride > 0 || dim == 0, "zero stride with nonzero dim");
        Self { data, stride, dim }
    }

    /// A contiguous view (`stride == dim`).
    #[must_use]
    pub fn contiguous(data: &'a [f32], dim: usize) -> Self {
        Self::new(data, dim.max(1), dim)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row extends past the underlying buffer.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }
}

/// Number of independent accumulators in [`dot`]. Wide enough for the
/// compiler to keep the loop in vector registers.
const LANES: usize = 8;

/// Dot product with `LANES` independent accumulators (reassociated
/// summation — results can differ from a strictly sequential sum in the
/// last bits, which every consumer tolerates at ≤1e-5 relative error).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let ax = &a[c * LANES..(c + 1) * LANES];
        let bx = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += ax[l] * bx[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..n {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// Scaled dots of `query` against rows `0..out.len()` of `keys`:
/// `out[r] = scale · (query · keys[r])`.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix(query: &[f32], keys: RowView<'_>, scale: f32, out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Scaled dots of `query` against the gathered `rows` of `keys`:
/// `out[i] = scale · (query · keys[rows[i]])`.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather(query: &[f32], keys: RowView<'_>, rows: &[usize], scale: f32, out: &mut [f32]) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Accumulates `out += Σ weights[i] · values[rows[i]]` over gathered rows
/// (callers zero `out` first; [`attend_gather`] does).
///
/// # Panics
///
/// Panics if `out.len() != values.dim()` or lengths disagree.
pub fn weighted_sum_gather(weights: &[f32], values: RowView<'_>, rows: &[usize], out: &mut [f32]) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    assert_eq!(weights.len(), rows.len(), "weight/row count mismatch");
    for (&r, &w) in rows.iter().zip(weights) {
        for (o, &x) in out.iter_mut().zip(values.row(r)) {
            *o += w * x;
        }
    }
}

/// Accumulates `out += Σ weights[r] · values[r]` over rows
/// `0..weights.len()`.
///
/// # Panics
///
/// Panics if `out.len() != values.dim()`.
pub fn weighted_sum_prefix(weights: &[f32], values: RowView<'_>, out: &mut [f32]) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    for (r, &w) in weights.iter().enumerate() {
        for (o, &x) in out.iter_mut().zip(values.row(r)) {
            *o += w * x;
        }
    }
}

/// Fused gather → score → softmax → weighted-sum attention over the
/// gathered `rows`: `out = softmax(scale · q·Kᵀ) · V`, writing into `out`
/// and reusing `weights` as scratch. An empty gather writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_gather(
    query: &[f32],
    keys: RowView<'_>,
    values: RowView<'_>,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if rows.is_empty() {
        return;
    }
    weights.clear();
    weights.resize(rows.len(), 0.0);
    dot_gather(query, keys, rows, scale, weights);
    softmax_in_place(weights);
    weighted_sum_gather(weights, values, rows, out);
}

/// Fused attention over the contiguous row prefix `0..n` (the causal
/// "attend to everything so far" step): `out = softmax(scale · q·Kᵀ) · V`.
/// `n == 0` writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_prefix(
    query: &[f32],
    keys: RowView<'_>,
    values: RowView<'_>,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    weights.clear();
    weights.resize(n, 0.0);
    dot_prefix(query, keys, scale, weights);
    softmax_in_place(weights);
    weighted_sum_prefix(weights, values, out);
}

/// Indices `0..n` ranked best-first under `cmp` (where `Ordering::Less`
/// means "ranks earlier"), keeping only the top `k` — selected with
/// `select_nth_unstable_by` (O(n + k log k)) instead of a full sort.
///
/// The comparator must be a total order (use [`f32::total_cmp`] plus an
/// index tie-break); the returned prefix is then exactly the first `k`
/// elements of the fully sorted order.
pub fn partial_top_k_by<F>(n: usize, k: usize, mut cmp: F) -> Vec<usize>
where
    F: FnMut(usize, usize) -> std::cmp::Ordering,
{
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    if k < n {
        idx.select_nth_unstable_by(k - 1, |&a, &b| cmp(a, b));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| cmp(a, b));
    idx
}

/// Indices of the `k` largest values, in descending value order, ties
/// toward the lower index. Total and deterministic for every input:
/// NaN ranks above +∞ (IEEE 754 `totalOrder`), so NaN-poisoned scores
/// cannot make the ranking run-to-run unstable.
#[must_use]
pub fn partial_top_k(values: &[f32], k: usize) -> Vec<usize> {
    partial_top_k_by(values.len(), k, |a, b| {
        values[b].total_cmp(&values[a]).then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mha::attention_output;

    #[test]
    fn dot_matches_sequential() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| 1.5 - (i as f32) * 0.125).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() <= 1e-4 * naive.abs().max(1.0));
    }

    #[test]
    fn row_view_strided_access() {
        // 3 rows of stride 4, logical width 2, offset 1 folded into slice.
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = RowView::new(&data[1..], 4, 2);
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(1), &[5.0, 6.0]);
        assert_eq!(v.row(2), &[9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn row_view_rejects_wide_rows() {
        let data = [0.0f32; 8];
        let _ = RowView::new(&data, 2, 3);
    }

    #[test]
    fn attend_gather_matches_naive_attention() {
        let dim = 5;
        let n = 7;
        let keys: Vec<f32> = (0..n * dim).map(|i| ((i * 13) % 11) as f32 * 0.1).collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 9) as f32 * 0.2).collect();
        let query: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.3 - 0.5).collect();
        let rows = [0usize, 2, 5];
        let kr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &keys[r * dim..(r + 1) * dim])
            .collect();
        let vr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &values[r * dim..(r + 1) * dim])
            .collect();
        let naive = attention_output(&query, &kr, &vr);
        let mut out = vec![0.0f32; dim];
        let mut scratch = Vec::new();
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            1.0 / (dim as f32).sqrt(),
            &mut scratch,
            &mut out,
        );
        for (a, b) in out.iter().zip(&naive) {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "{out:?} vs {naive:?}"
            );
        }
    }

    #[test]
    fn attend_empty_selection_is_zero() {
        let keys = [1.0f32, 2.0];
        let values = [3.0f32, 4.0];
        let mut out = vec![7.0f32; 2];
        let mut scratch = Vec::new();
        attend_gather(
            &[1.0, 0.0],
            RowView::contiguous(&keys, 2),
            RowView::contiguous(&values, 2),
            &[],
            1.0,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn partial_top_k_matches_full_sort_under_ties() {
        let values = vec![0.5f32, 0.9, 0.5, 0.9, 0.1, 0.9];
        for k in 0..=values.len() + 1 {
            let mut full: Vec<usize> = (0..values.len()).collect();
            full.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
            full.truncate(k);
            assert_eq!(partial_top_k(&values, k), full, "k = {k}");
        }
    }

    #[test]
    fn partial_top_k_is_total_under_nan() {
        let values = vec![0.3f32, f32::NAN, 0.7, f32::NAN];
        let a = partial_top_k(&values, 2);
        let b = partial_top_k(&values, 2);
        assert_eq!(a, b);
        // NaN sorts above every finite value under totalOrder.
        assert_eq!(a, vec![1, 3]);
    }

    #[test]
    fn dot_prefix_and_gather_agree() {
        let dim = 4;
        let keys: Vec<f32> = (0..6 * dim).map(|i| i as f32 * 0.01).collect();
        let view = RowView::contiguous(&keys, dim);
        let q = [0.5f32, -0.5, 1.0, 0.25];
        let mut a = vec![0.0f32; 6];
        dot_prefix(&q, view, 2.0, &mut a);
        let rows: Vec<usize> = (0..6).collect();
        let mut b = vec![0.0f32; 6];
        dot_gather(&q, view, &rows, 2.0, &mut b);
        assert_eq!(a, b);
    }
}
