//! Flat-layout compute kernels for the decode hot path.
//!
//! Every hot loop in the decode pipeline — prefill attention, per-step
//! scoring, exact attention over a selection, and top-k selection — runs
//! over contiguous row-major arenas through this module instead of
//! pointer-chasing `Vec<Vec<f32>>` layouts. The kernels are deliberately
//! allocation-free: callers pass output slices and reusable scratch
//! buffers, so a steady-state decode step performs no heap traffic.
//!
//! Layout convention: a [`RowView`] describes `n` logical rows of `dim`
//! contiguous `f32`s inside a flat buffer, with consecutive rows `stride`
//! elements apart (`stride >= dim`). A plain matrix is `stride == dim`; a
//! per-head slice of a multi-head projection is `stride == d_model`,
//! `dim == d_head`, with the head offset folded into the buffer slice.
//!
//! The kernels themselves are generic over the [`Rows`] / [`QuantRows`]
//! access traits: every row is one contiguous slice, but consecutive rows
//! need not be — the paged views
//! ([`PagedRows`](crate::paged::PagedRows),
//! [`PagedQuantRows`](crate::paged::PagedQuantRows)) resolve each logical
//! row into its page, so the same gather/attend kernels walk flat arenas
//! and non-contiguous page tables alike (scalar parity between the two is
//! property-tested).
//!
//! Ordering convention: all top-k selection in this module uses
//! [`f32::total_cmp`] with an explicit ascending-index tie-break, so
//! rankings are total and deterministic even in the presence of NaN
//! (NaN sorts as the largest value, per IEEE 754 `totalOrder`).

use crate::matrix::softmax_in_place;

/// A borrowed view of row-major `f32` rows inside a flat buffer.
///
/// Row `r` is `data[r * stride .. r * stride + dim]`. The view itself does
/// not fix a row count; accessors bound-check through the underlying slice.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    data: &'a [f32],
    stride: usize,
    dim: usize,
}

impl<'a> RowView<'a> {
    /// Creates a view with the given row stride and logical row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim > stride`, or if `stride == 0` while `dim != 0`.
    #[must_use]
    pub fn new(data: &'a [f32], stride: usize, dim: usize) -> Self {
        assert!(
            dim <= stride || dim == 0,
            "row dim {dim} exceeds stride {stride}"
        );
        assert!(stride > 0 || dim == 0, "zero stride with nonzero dim");
        Self { data, stride, dim }
    }

    /// A contiguous view (`stride == dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`: a zero-dim contiguous view would give every
    /// row the same empty slice, silently aliasing all rows instead of
    /// surfacing the degenerate shape at the call site.
    #[must_use]
    pub fn contiguous(data: &'a [f32], dim: usize) -> Self {
        assert!(dim > 0, "contiguous RowView requires dim > 0");
        Self::new(data, dim, dim)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row extends past the underlying buffer.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }
}

/// Row-addressable `f32` rows: the access contract the gather/attend
/// kernels read keys and values through. Each row is one contiguous
/// slice of length [`Rows::dim`], but consecutive rows need not be
/// adjacent in memory — the flat [`RowView`] strides through one buffer
/// while the paged [`PagedRows`](crate::paged::PagedRows) resolves each
/// row into its page. Implementations are cheap `Copy` views, so kernels
/// take them by value.
pub trait Rows: Copy {
    /// Logical row width.
    fn dim(&self) -> usize;
    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn row(&self, r: usize) -> &[f32];
}

impl Rows for RowView<'_> {
    fn dim(&self) -> usize {
        RowView::dim(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        RowView::row(self, r)
    }
}

/// The quantized twin of [`Rows`]: row-addressable `i8` levels with one
/// `f32` dequantization scale per row. Implemented by the flat
/// [`QuantRowView`] and the paged
/// [`PagedQuantRows`](crate::paged::PagedQuantRows).
pub trait QuantRows: Copy {
    /// Logical row width.
    fn dim(&self) -> usize;
    /// Borrow the integer levels of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn row(&self, r: usize) -> &[i8];
    /// The dequantization scale of row `r` (`value = scale · level`).
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the underlying storage.
    fn scale(&self, r: usize) -> f32;
}

impl QuantRows for QuantRowView<'_> {
    fn dim(&self) -> usize {
        QuantRowView::dim(self)
    }
    #[inline]
    fn row(&self, r: usize) -> &[i8] {
        QuantRowView::row(self, r)
    }
    #[inline]
    fn scale(&self, r: usize) -> f32 {
        QuantRowView::scale(self, r)
    }
}

/// Number of independent accumulators in [`dot`]. Wide enough for the
/// compiler to keep the loop in vector registers.
const LANES: usize = 8;

/// Dot product with `LANES` independent accumulators (reassociated
/// summation — results can differ from a strictly sequential sum in the
/// last bits, which every consumer tolerates at ≤1e-5 relative error).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let ax = &a[c * LANES..(c + 1) * LANES];
        let bx = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += ax[l] * bx[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..n {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// Scaled dots of `query` against rows `0..out.len()` of `keys`:
/// `out[r] = scale · (query · keys[r])`.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix<K: Rows>(query: &[f32], keys: K, scale: f32, out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Scaled dots of `query` against the gathered `rows` of `keys`:
/// `out[i] = scale · (query · keys[rows[i]])`.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather<K: Rows>(query: &[f32], keys: K, rows: &[usize], scale: f32, out: &mut [f32]) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot(query, keys.row(r)) * scale;
    }
}

/// Accumulates `out += Σ weights[i] · values[rows[i]]` over gathered rows
/// (callers zero `out` first; [`attend_gather`] does).
///
/// # Panics
///
/// Panics if `out.len() != values.dim()` or lengths disagree.
pub fn weighted_sum_gather<V: Rows>(weights: &[f32], values: V, rows: &[usize], out: &mut [f32]) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    assert_eq!(weights.len(), rows.len(), "weight/row count mismatch");
    for (&r, &w) in rows.iter().zip(weights) {
        for (o, &x) in out.iter_mut().zip(values.row(r)) {
            *o += w * x;
        }
    }
}

/// Accumulates `out += Σ weights[r] · values[r]` over rows
/// `0..weights.len()`.
///
/// # Panics
///
/// Panics if `out.len() != values.dim()`.
pub fn weighted_sum_prefix<V: Rows>(weights: &[f32], values: V, out: &mut [f32]) {
    assert_eq!(out.len(), values.dim(), "output/value dimension mismatch");
    for (r, &w) in weights.iter().enumerate() {
        for (o, &x) in out.iter_mut().zip(values.row(r)) {
            *o += w * x;
        }
    }
}

/// Fused gather → score → softmax → weighted-sum attention over the
/// gathered `rows`: `out = softmax(scale · q·Kᵀ) · V`, writing into `out`
/// and reusing `weights` as scratch. An empty gather writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_gather<K: Rows, V: Rows>(
    query: &[f32],
    keys: K,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if rows.is_empty() {
        return;
    }
    weights.clear();
    weights.resize(rows.len(), 0.0);
    dot_gather(query, keys, rows, scale, weights);
    softmax_in_place(weights);
    weighted_sum_gather(weights, values, rows, out);
}

/// Fused attention over the contiguous row prefix `0..n` (the causal
/// "attend to everything so far" step): `out = softmax(scale · q·Kᵀ) · V`.
/// `n == 0` writes a zero vector.
///
/// # Panics
///
/// Panics if `query.len() != keys.dim()` or `out.len() != values.dim()`.
pub fn attend_prefix<K: Rows, V: Rows>(
    query: &[f32],
    keys: K,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    weights.clear();
    weights.resize(n, 0.0);
    dot_prefix(query, keys, scale, weights);
    softmax_in_place(weights);
    weighted_sum_prefix(weights, values, out);
}

/// A borrowed view of row-major `i8` rows with one `f32` scale per row:
/// the quantized twin of [`RowView`].
///
/// Row `r` holds `dim` signed integer levels at
/// `data[r * stride .. r * stride + dim]`; its real value is
/// `scales[r] · data[r][i]`. This is the layout of the quantized key arena
/// ([`KvStore::quant_keys_view`](crate::KvStore::quant_keys_view)): 1 byte
/// per element plus one scale per row, a ~4× traffic reduction over the
/// `f32` arena that mirrors the UniCAIM array's reduced-precision cells.
#[derive(Debug, Clone, Copy)]
pub struct QuantRowView<'a> {
    data: &'a [i8],
    scales: &'a [f32],
    stride: usize,
    dim: usize,
}

impl<'a> QuantRowView<'a> {
    /// Creates a view with the given row stride and logical row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > stride` (same degenerate-shape
    /// contract as [`RowView::contiguous`]).
    #[must_use]
    pub fn new(data: &'a [i8], scales: &'a [f32], stride: usize, dim: usize) -> Self {
        assert!(dim > 0, "QuantRowView requires dim > 0");
        assert!(dim <= stride, "row dim {dim} exceeds stride {stride}");
        Self {
            data,
            scales,
            stride,
            dim,
        }
    }

    /// A contiguous view (`stride == dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn contiguous(data: &'a [i8], scales: &'a [f32], dim: usize) -> Self {
        Self::new(data, scales, dim, dim)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow the integer levels of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row extends past the underlying buffer.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [i8] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }

    /// The dequantization scale of row `r` (`value = scale · level`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range of the scale vector.
    #[inline]
    #[must_use]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }
}

/// Quantization steps per side of zero for [`quantize_row_i8`]: the
/// symmetric `i8` range `−127 … +127` (−128 is never produced).
pub const INT8_STEPS: f32 = 127.0;

/// Quantization steps per side of zero for [`quantize_row_cell3`]: levels
/// `−2 … +2` map to the 3-bit multilevel cell's five signed weights
/// {−1, −0.5, 0, +0.5, +1} (times the row scale).
pub const CELL3_STEPS: f32 = 2.0;

/// Shared symmetric per-row quantizer: max-abs scaling to `±steps` integer
/// levels, round-to-nearest. Returns `scale` such that
/// `src[i] ≈ scale · out[i]`; an all-zero row quantizes to zeros with
/// scale 0.
fn quantize_row(src: &[f32], steps: f32, out: &mut [i8]) -> f32 {
    assert_eq!(src.len(), out.len(), "quantize output length mismatch");
    let maxabs = src.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if maxabs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = maxabs / steps;
    for (o, &x) in out.iter_mut().zip(src) {
        // |x| ≤ maxabs so |x/scale| ≤ steps ≤ 127: the cast cannot wrap
        // (and saturates defensively on non-finite input).
        *o = (x / scale).round() as i8;
    }
    scale
}

/// Quantizes one row to `i8` with symmetric per-row max-abs scaling
/// (`±127` levels). Returns the scale; round-trip error per element is at
/// most `scale / 2 = maxabs / 254`.
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_i8(src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row(src, INT8_STEPS, out)
}

/// Snaps one row to the 3-bit multilevel cell's five signed levels
/// {−1, −0.5, 0, +0.5, +1} scaled by the row max-abs, stored as integer
/// levels `−2 … +2`. Returns the scale (`maxabs / 2`).
///
/// The snap is idempotent: re-quantizing the dequantized row reproduces
/// the same levels and scale (the max-abs element always lands on `±2`,
/// so the scale is preserved exactly).
///
/// # Panics
///
/// Panics if `src.len() != out.len()`.
pub fn quantize_row_cell3(src: &[f32], out: &mut [i8]) -> f32 {
    quantize_row(src, CELL3_STEPS, out)
}

/// Quantizes a contiguous row-major `f32` arena (`src.len() / dim` rows)
/// to `i8` with one scale per row — the bulk form of [`quantize_row_i8`],
/// producing exactly the layout [`QuantRowView::contiguous`] reads.
///
/// # Panics
///
/// Panics if `dim == 0` or `src.len()` is not a multiple of `dim`.
#[must_use]
pub fn quantize_arena_i8(src: &[f32], dim: usize) -> (Vec<i8>, Vec<f32>) {
    assert!(dim > 0, "quantize_arena_i8 requires dim > 0");
    assert!(
        src.len().is_multiple_of(dim),
        "arena length {} is not a multiple of dim {dim}",
        src.len()
    );
    let rows = src.len() / dim;
    let mut q = vec![0i8; src.len()];
    let mut scales = vec![0.0f32; rows];
    for r in 0..rows {
        scales[r] = quantize_row_i8(&src[r * dim..(r + 1) * dim], &mut q[r * dim..(r + 1) * dim]);
    }
    (q, scales)
}

/// Dequantizes integer levels back to `f32`: `out[i] = scale · q[i]`.
///
/// # Panics
///
/// Panics if `q.len() != out.len()`.
pub fn dequantize_row(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "dequantize output length mismatch");
    for (o, &v) in out.iter_mut().zip(q) {
        *o = scale * f32::from(v);
    }
}

/// Integer dot product with `LANES` independent `i32` accumulators — the
/// quantized twin of [`dot`]. Exact (no rounding): `|a·b| ≤ 127²·dim`
/// stays far inside `i32` for any realistic head dimension.
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ; release builds truncate to
/// the shorter slice.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0i32; LANES];
    for c in 0..chunks {
        let ax = &a[c * LANES..(c + 1) * LANES];
        let bx = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += i32::from(ax[l]) * i32::from(bx[l]);
        }
    }
    let mut tail = 0i32;
    for i in chunks * LANES..n {
        tail += i32::from(a[i]) * i32::from(b[i]);
    }
    acc.iter().sum::<i32>() + tail
}

/// Quantized twin of [`dot_prefix`]: scaled dots of a pre-quantized query
/// against rows `0..out.len()` of the quantized key arena. The integer
/// dot accumulates in `i32`; the combined rescale
/// (`scale · query_scale · keys.scale(r)`) is applied **once per row**.
///
/// # Panics
///
/// Panics if a row extends past the key buffer.
pub fn dot_prefix_q<Q: QuantRows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    scale: f32,
    out: &mut [f32],
) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot_i8(query_q, keys.row(r)) as f32 * (scale * query_scale * keys.scale(r));
    }
}

/// Quantized twin of [`dot_gather`]: scaled dots of a pre-quantized query
/// against the gathered `rows` of the quantized key arena, rescaled once
/// per row.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()` or a row is out of range.
pub fn dot_gather_q<Q: QuantRows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    rows: &[usize],
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(rows.len(), out.len(), "gather output length mismatch");
    for (&r, o) in rows.iter().zip(out.iter_mut()) {
        *o = dot_i8(query_q, keys.row(r)) as f32 * (scale * query_scale * keys.scale(r));
    }
}

/// Quantized twin of [`attend_gather`]: fused gather → quantized score →
/// softmax → weighted-sum attention. Keys are scored from the quantized
/// arena (the deployed precision); values stay `f32`, mirroring the
/// UniCAIM array where only the CAM/CIM key storage is reduced-precision.
/// An empty gather writes a zero vector.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_gather_q<Q: QuantRows, V: Rows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    rows: &[usize],
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query_q.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if rows.is_empty() {
        return;
    }
    weights.clear();
    weights.resize(rows.len(), 0.0);
    dot_gather_q(query_q, query_scale, keys, rows, scale, weights);
    softmax_in_place(weights);
    weighted_sum_gather(weights, values, rows, out);
}

/// Quantized twin of [`attend_prefix`]: fused attention over the
/// contiguous row prefix `0..n`, scoring from the quantized key arena with
/// `f32` values. `n == 0` writes a zero vector.
///
/// # Panics
///
/// Panics if `query_q.len() != keys.dim()` or `out.len() != values.dim()`.
#[allow(clippy::too_many_arguments)]
pub fn attend_prefix_q<Q: QuantRows, V: Rows>(
    query_q: &[i8],
    query_scale: f32,
    keys: Q,
    values: V,
    n: usize,
    scale: f32,
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(query_q.len(), keys.dim(), "query/key dimension mismatch");
    out.fill(0.0);
    if n == 0 {
        return;
    }
    weights.clear();
    weights.resize(n, 0.0);
    dot_prefix_q(query_q, query_scale, keys, scale, weights);
    softmax_in_place(weights);
    weighted_sum_prefix(weights, values, out);
}

/// Indices `0..n` ranked best-first under `cmp` (where `Ordering::Less`
/// means "ranks earlier"), keeping only the top `k` — selected with
/// `select_nth_unstable_by` (O(n + k log k)) instead of a full sort.
///
/// The comparator must be a total order (use [`f32::total_cmp`] plus an
/// index tie-break); the returned prefix is then exactly the first `k`
/// elements of the fully sorted order.
pub fn partial_top_k_by<F>(n: usize, k: usize, mut cmp: F) -> Vec<usize>
where
    F: FnMut(usize, usize) -> std::cmp::Ordering,
{
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    if k < n {
        idx.select_nth_unstable_by(k - 1, |&a, &b| cmp(a, b));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| cmp(a, b));
    idx
}

/// Indices of the `k` largest values, in descending value order, ties
/// toward the lower index. Total and deterministic for every input:
/// NaN ranks above +∞ (IEEE 754 `totalOrder`), so NaN-poisoned scores
/// cannot make the ranking run-to-run unstable.
#[must_use]
pub fn partial_top_k(values: &[f32], k: usize) -> Vec<usize> {
    partial_top_k_by(values.len(), k, |a, b| {
        values[b].total_cmp(&values[a]).then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mha::attention_output;

    #[test]
    fn dot_matches_sequential() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| 1.5 - (i as f32) * 0.125).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() <= 1e-4 * naive.abs().max(1.0));
    }

    #[test]
    fn row_view_strided_access() {
        // 3 rows of stride 4, logical width 2, offset 1 folded into slice.
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = RowView::new(&data[1..], 4, 2);
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(1), &[5.0, 6.0]);
        assert_eq!(v.row(2), &[9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn row_view_rejects_wide_rows() {
        let data = [0.0f32; 8];
        let _ = RowView::new(&data, 2, 3);
    }

    #[test]
    fn attend_gather_matches_naive_attention() {
        let dim = 5;
        let n = 7;
        let keys: Vec<f32> = (0..n * dim).map(|i| ((i * 13) % 11) as f32 * 0.1).collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 9) as f32 * 0.2).collect();
        let query: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.3 - 0.5).collect();
        let rows = [0usize, 2, 5];
        let kr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &keys[r * dim..(r + 1) * dim])
            .collect();
        let vr: Vec<&[f32]> = rows
            .iter()
            .map(|&r| &values[r * dim..(r + 1) * dim])
            .collect();
        let naive = attention_output(&query, &kr, &vr);
        let mut out = vec![0.0f32; dim];
        let mut scratch = Vec::new();
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            1.0 / (dim as f32).sqrt(),
            &mut scratch,
            &mut out,
        );
        for (a, b) in out.iter().zip(&naive) {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "{out:?} vs {naive:?}"
            );
        }
    }

    #[test]
    fn attend_empty_selection_is_zero() {
        let keys = [1.0f32, 2.0];
        let values = [3.0f32, 4.0];
        let mut out = vec![7.0f32; 2];
        let mut scratch = Vec::new();
        attend_gather(
            &[1.0, 0.0],
            RowView::contiguous(&keys, 2),
            RowView::contiguous(&values, 2),
            &[],
            1.0,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn partial_top_k_matches_full_sort_under_ties() {
        let values = vec![0.5f32, 0.9, 0.5, 0.9, 0.1, 0.9];
        for k in 0..=values.len() + 1 {
            let mut full: Vec<usize> = (0..values.len()).collect();
            full.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
            full.truncate(k);
            assert_eq!(partial_top_k(&values, k), full, "k = {k}");
        }
    }

    #[test]
    fn partial_top_k_is_total_under_nan() {
        let values = vec![0.3f32, f32::NAN, 0.7, f32::NAN];
        let a = partial_top_k(&values, 2);
        let b = partial_top_k(&values, 2);
        assert_eq!(a, b);
        // NaN sorts above every finite value under totalOrder.
        assert_eq!(a, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn contiguous_rejects_zero_dim() {
        let data: [f32; 4] = [1.0, 2.0, 3.0, 4.0];
        let _ = RowView::contiguous(&data, 0);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn quant_contiguous_rejects_zero_dim() {
        let data: [i8; 4] = [1, 2, 3, 4];
        let scales: [f32; 1] = [1.0];
        let _ = QuantRowView::contiguous(&data, &scales, 0);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let src: Vec<f32> = (0..37).map(|i| (i as f32) * 0.37 - 6.0).collect();
        let mut q = vec![0i8; src.len()];
        let scale = quantize_row_i8(&src, &mut q);
        let mut back = vec![0.0f32; src.len()];
        dequantize_row(&q, scale, &mut back);
        for (x, y) in src.iter().zip(&back) {
            assert!(
                (x - y).abs() <= scale * 0.5 + 1e-6,
                "{x} vs {y} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantize_zero_row_has_zero_scale() {
        let src = [0.0f32; 5];
        let mut q = [1i8; 5];
        assert_eq!(quantize_row_i8(&src, &mut q), 0.0);
        assert_eq!(q, [0i8; 5]);
    }

    #[test]
    fn cell3_snap_uses_five_levels() {
        let src = [1.0f32, -1.0, 0.1, 0.6, -0.4];
        let mut q = [0i8; 5];
        let scale = quantize_row_cell3(&src, &mut q);
        assert!((scale - 0.5).abs() < 1e-9);
        assert_eq!(q, [2, -2, 0, 1, -1]);
    }

    #[test]
    fn dot_i8_matches_integer_reference() {
        let a: Vec<i8> = (0..37).map(|i| ((i * 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| ((i * 7) % 251) as i8).collect();
        let naive: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), naive);
    }

    #[test]
    fn dot_prefix_q_and_gather_q_agree() {
        let dim = 12;
        let n = 6;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 13) % 17) as f32 * 0.2 - 1.0)
            .collect();
        let (qkeys, scales) = quantize_arena_i8(&keys, dim);
        let view = QuantRowView::contiguous(&qkeys, &scales, dim);
        let query: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.1 - 0.5).collect();
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let mut a = vec![0.0f32; n];
        dot_prefix_q(&qq, qs, view, 2.0, &mut a);
        let rows: Vec<usize> = (0..n).collect();
        let mut b = vec![0.0f32; n];
        dot_gather_q(&qq, qs, view, &rows, 2.0, &mut b);
        assert_eq!(a, b);
        // And both stay close to the f32 kernel.
        let mut f = vec![0.0f32; n];
        dot_prefix(&query, RowView::contiguous(&keys, dim), 2.0, &mut f);
        for (x, y) in a.iter().zip(&f) {
            assert!((x - y).abs() <= 0.05 * y.abs().max(1.0), "{a:?} vs {f:?}");
        }
    }

    #[test]
    fn attend_gather_q_tracks_f32_attention() {
        let dim = 8;
        let n = 10;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 29) % 23) as f32 * 0.1 - 1.0)
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 19) as f32 * 0.2).collect();
        let query: Vec<f32> = (0..dim).map(|i| 0.4 - (i as f32) * 0.09).collect();
        let (qkeys, scales) = quantize_arena_i8(&keys, dim);
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let rows = [0usize, 3, 4, 7, 9];
        let scale = 1.0 / (dim as f32).sqrt();
        let (mut wq, mut wf) = (Vec::new(), Vec::new());
        let mut out_q = vec![0.0f32; dim];
        let mut out_f = vec![0.0f32; dim];
        attend_gather_q(
            &qq,
            qs,
            QuantRowView::contiguous(&qkeys, &scales, dim),
            RowView::contiguous(&values, dim),
            &rows,
            scale,
            &mut wq,
            &mut out_q,
        );
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            scale,
            &mut wf,
            &mut out_f,
        );
        for (a, b) in out_q.iter().zip(&out_f) {
            assert!(
                (a - b).abs() <= 0.05 * b.abs().max(1.0),
                "{out_q:?} vs {out_f:?}"
            );
        }
        // Empty gather is a deterministic zero vector, like the f32 twin.
        attend_gather_q(
            &qq,
            qs,
            QuantRowView::contiguous(&qkeys, &scales, dim),
            RowView::contiguous(&values, dim),
            &[],
            scale,
            &mut wq,
            &mut out_q,
        );
        assert_eq!(out_q, vec![0.0; dim]);
    }

    #[test]
    fn attend_prefix_q_matches_gather_over_full_prefix() {
        let dim = 6;
        let n = 5;
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 3) % 11) as f32 * 0.3 - 1.2)
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| ((i * 5) % 13) as f32 * 0.1).collect();
        let query = vec![0.5f32, -0.25, 0.75, 0.0, -1.0, 0.3];
        let mut qkeys = vec![0i8; n * dim];
        let mut scales = vec![0.0f32; n];
        for r in 0..n {
            scales[r] = quantize_row_cell3(
                &keys[r * dim..(r + 1) * dim],
                &mut qkeys[r * dim..(r + 1) * dim],
            );
        }
        let mut qq = vec![0i8; dim];
        let qs = quantize_row_i8(&query, &mut qq);
        let kview = QuantRowView::contiguous(&qkeys, &scales, dim);
        let vview = RowView::contiguous(&values, dim);
        let rows: Vec<usize> = (0..n).collect();
        let mut w1 = Vec::new();
        let mut w2 = Vec::new();
        let mut a = vec![0.0f32; dim];
        let mut b = vec![0.0f32; dim];
        attend_prefix_q(&qq, qs, kview, vview, n, 0.5, &mut w1, &mut a);
        attend_gather_q(&qq, qs, kview, vview, &rows, 0.5, &mut w2, &mut b);
        assert_eq!(a, b);
    }

    /// Regression (satellite): extreme-magnitude logits through the fused
    /// attention kernels must produce finite, normalized outputs — a naive
    /// (non-max-subtracted) softmax overflows `exp` to inf/NaN as soon as
    /// `|scale·q·k| ≳ 90`.
    #[test]
    fn attend_survives_extreme_logits() {
        let dim = 4;
        let n = 3;
        // Huge keys/queries: raw scores are ~±1e7, far past exp overflow.
        let keys: Vec<f32> = (0..n * dim)
            .map(|i| if i % 2 == 0 { 3.0e3 } else { -3.0e3 })
            .collect();
        let values: Vec<f32> = (0..n * dim).map(|i| (i % 5) as f32).collect();
        let query = vec![2.0e3f32, 1.0e3, -2.0e3, 1.5e3];
        let mut weights = Vec::new();
        let mut out = vec![0.0f32; dim];
        attend_prefix(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            n,
            1.0,
            &mut weights,
            &mut out,
        );
        assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        let sum: f32 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "weights not normalized: {weights:?}"
        );
        assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));

        let rows = [0usize, 2];
        attend_gather(
            &query,
            RowView::contiguous(&keys, dim),
            RowView::contiguous(&values, dim),
            &rows,
            1.0,
            &mut weights,
            &mut out,
        );
        assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        let sum: f32 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "weights not normalized: {weights:?}"
        );
    }

    #[test]
    fn dot_prefix_and_gather_agree() {
        let dim = 4;
        let keys: Vec<f32> = (0..6 * dim).map(|i| i as f32 * 0.01).collect();
        let view = RowView::contiguous(&keys, dim);
        let q = [0.5f32, -0.5, 1.0, 0.25];
        let mut a = vec![0.0f32; 6];
        dot_prefix(&q, view, 2.0, &mut a);
        let rows: Vec<usize> = (0..6).collect();
        let mut b = vec![0.0f32; 6];
        dot_gather(&q, view, &rows, 2.0, &mut b);
        assert_eq!(a, b);
    }
}
