//! Exact (dense) attention kernels and a weight-carrying multi-head layer.

use serde::{Deserialize, Serialize};

use crate::kernels::{self, RowView};
use crate::matrix::{softmax_in_place, Matrix};
use crate::AttentionError;

/// Attention scores of one query against a set of keys:
/// `q · kᵀ / √d` (the paper's Eq. 1 similarity, scaled as usual).
///
/// # Panics
///
/// Panics if any key's length differs from the query's.
#[must_use]
pub fn attention_scores(query: &[f32], keys: &[&[f32]]) -> Vec<f32> {
    let scale = 1.0 / (query.len() as f32).sqrt();
    keys.iter().map(|k| Matrix::dot(query, k) * scale).collect()
}

/// Exact single-query attention output: `softmax(q·Kᵀ/√d) · V`.
///
/// `keys` and `values` must be parallel slices of equal length; an empty key
/// set yields a zero vector.
///
/// # Panics
///
/// Panics if `keys.len() != values.len()` or dimensions disagree.
#[must_use]
pub fn attention_output(query: &[f32], keys: &[&[f32]], values: &[&[f32]]) -> Vec<f32> {
    assert_eq!(keys.len(), values.len(), "keys/values must be parallel");
    if keys.is_empty() {
        return vec![0.0; query.len()];
    }
    let mut weights = attention_scores(query, keys);
    softmax_in_place(&mut weights);
    let dim = values[0].len();
    let mut out = vec![0.0f32; dim];
    for (w, v) in weights.iter().zip(values) {
        assert_eq!(v.len(), dim, "all values must share a dimension");
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += w * x;
        }
    }
    out
}

/// Shape configuration of a multi-head attention layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionConfig {
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Number of attention heads; must divide `d_model`.
    pub n_heads: usize,
}

impl AttentionConfig {
    /// Per-head dimension.
    #[must_use]
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Validates that heads divide the model dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] otherwise.
    pub fn validate(&self) -> Result<(), AttentionError> {
        if self.n_heads == 0 || !self.d_model.is_multiple_of(self.n_heads) {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "n_heads {} must be nonzero and divide d_model {}",
                    self.n_heads, self.d_model
                ),
            });
        }
        Ok(())
    }
}

/// A multi-head attention layer with seeded random projections.
///
/// Weights are initialized deterministically from the seed so experiments
/// are reproducible. The layer exposes both the fused forward pass and the
/// per-head query/key/value projections that the KV-cache policies need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    config: AttentionConfig,
    w_q: Matrix,
    w_k: Matrix,
    w_v: Matrix,
    w_o: Matrix,
}

impl MultiHeadAttention {
    /// Creates a layer with seeded normal weights (std `1/√d_model`).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] for an invalid config.
    pub fn new(config: AttentionConfig, seed: u64) -> Result<Self, AttentionError> {
        config.validate()?;
        let d = config.d_model;
        let scale = 1.0 / (d as f32).sqrt();
        Ok(Self {
            config,
            w_q: Matrix::random_normal(d, d, scale, seed.wrapping_mul(4).wrapping_add(1)),
            w_k: Matrix::random_normal(d, d, scale, seed.wrapping_mul(4).wrapping_add(2)),
            w_v: Matrix::random_normal(d, d, scale, seed.wrapping_mul(4).wrapping_add(3)),
            w_o: Matrix::random_normal(d, d, scale, seed.wrapping_mul(4).wrapping_add(4)),
        })
    }

    /// The layer's shape configuration.
    #[must_use]
    pub fn config(&self) -> AttentionConfig {
        self.config
    }

    /// Projects hidden states (`seq × d_model`) to queries.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the matrix product.
    pub fn project_q(&self, hidden: &Matrix) -> Result<Matrix, AttentionError> {
        hidden.matmul(&self.w_q)
    }

    /// Projects hidden states to keys.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the matrix product.
    pub fn project_k(&self, hidden: &Matrix) -> Result<Matrix, AttentionError> {
        hidden.matmul(&self.w_k)
    }

    /// Projects hidden states to values.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the matrix product.
    pub fn project_v(&self, hidden: &Matrix) -> Result<Matrix, AttentionError> {
        hidden.matmul(&self.w_v)
    }

    /// Full causal self-attention over a sequence of hidden states
    /// (`seq × d_model` in, same shape out).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the projections.
    pub fn forward(&self, hidden: &Matrix) -> Result<Matrix, AttentionError> {
        let seq = hidden.rows();
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let q = self.project_q(hidden)?;
        let k = self.project_k(hidden)?;
        let v = self.project_v(hidden)?;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Matrix::zeros(seq, d);
        if seq == 0 {
            // Nothing to attend over; also keeps the per-head buffer
            // slicing below in bounds (the projections are empty).
            return concat.matmul(&self.w_o);
        }
        let mut weights = Vec::with_capacity(seq);
        // Per head, the projection rows are strided slices of the flat
        // `seq × d_model` buffers; the fused kernel attends over them
        // without gathering per-token slices.
        for h in 0..self.config.n_heads {
            let lo = h * dh;
            let hi = lo + dh;
            let keys = RowView::new(&k.as_slice()[lo..], d, dh);
            let values = RowView::new(&v.as_slice()[lo..], d, dh);
            for t in 0..seq {
                let q_t = &q.row(t)[lo..hi];
                kernels::attend_prefix(
                    q_t,
                    keys,
                    values,
                    t + 1,
                    scale,
                    &mut weights,
                    &mut concat.row_mut(t)[lo..hi],
                );
            }
        }
        concat.matmul(&self.w_o)
    }

    /// The causal attention-probability matrix of head `head` over the
    /// sequence (`seq × seq`, rows sum to 1, upper triangle zero). This is
    /// what prefill-stage static pruning accumulates (paper Fig. 3a).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the projections.
    pub fn attention_matrix(&self, hidden: &Matrix, head: usize) -> Result<Matrix, AttentionError> {
        if head >= self.config.n_heads {
            return Err(AttentionError::IndexOutOfRange {
                index: head,
                len: self.config.n_heads,
            });
        }
        let seq = hidden.rows();
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let lo = head * dh;
        let hi = lo + dh;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut probs = Matrix::zeros(seq, seq);
        if seq == 0 {
            return Ok(probs);
        }
        let q = self.project_q(hidden)?;
        let k = self.project_k(hidden)?;
        let keys = RowView::new(&k.as_slice()[lo..], d, dh);
        for t in 0..seq {
            let q_t = &q.row(t)[lo..hi];
            let row = probs.row_mut(t);
            kernels::dot_prefix(q_t, keys, scale, &mut row[..t + 1]);
            softmax_in_place(&mut row[..t + 1]);
        }
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_scale_by_sqrt_d() {
        let q = vec![1.0f32, 0.0, 0.0, 0.0];
        let k = vec![2.0f32, 0.0, 0.0, 0.0];
        let s = attention_scores(&q, &[&k]);
        assert!((s[0] - 1.0).abs() < 1e-6); // 2 / sqrt(4)
    }

    #[test]
    fn output_is_convex_combination() {
        let q = vec![0.3f32, -0.7];
        let keys = [vec![1.0f32, 0.0], vec![0.0f32, 1.0], vec![0.5f32, 0.5]];
        let values = [vec![1.0f32, 2.0], vec![3.0f32, 4.0], vec![5.0f32, 6.0]];
        let kr: Vec<&[f32]> = keys.iter().map(Vec::as_slice).collect();
        let vr: Vec<&[f32]> = values.iter().map(Vec::as_slice).collect();
        let out = attention_output(&q, &kr, &vr);
        // Each output coordinate lies inside the convex hull of the values.
        assert!(out[0] > 1.0 && out[0] < 5.0);
        assert!(out[1] > 2.0 && out[1] < 6.0);
    }

    #[test]
    fn single_key_attention_returns_value() {
        let q = vec![0.1f32, 0.2];
        let k = vec![1.0f32, -1.0];
        let v = vec![7.0f32, 9.0];
        let out = attention_output(&q, &[&k], &[&v]);
        assert_eq!(out, vec![7.0, 9.0]);
    }

    #[test]
    fn empty_keys_give_zero_output() {
        let out = attention_output(&[1.0, 2.0], &[], &[]);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn config_validation() {
        assert!(AttentionConfig {
            d_model: 64,
            n_heads: 4
        }
        .validate()
        .is_ok());
        assert!(AttentionConfig {
            d_model: 64,
            n_heads: 5
        }
        .validate()
        .is_err());
        assert!(AttentionConfig {
            d_model: 64,
            n_heads: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn empty_sequence_is_handled() {
        let cfg = AttentionConfig {
            d_model: 8,
            n_heads: 2,
        };
        let layer = MultiHeadAttention::new(cfg, 1).unwrap();
        let empty = Matrix::zeros(0, 8);
        let out = layer.forward(&empty).unwrap();
        assert_eq!((out.rows(), out.cols()), (0, 8));
        let probs = layer.attention_matrix(&empty, 1).unwrap();
        assert_eq!((probs.rows(), probs.cols()), (0, 0));
    }

    #[test]
    fn forward_preserves_shape_and_is_deterministic() {
        let cfg = AttentionConfig {
            d_model: 32,
            n_heads: 4,
        };
        let layer = MultiHeadAttention::new(cfg, 5).unwrap();
        let hidden = Matrix::random_normal(6, 32, 1.0, 9);
        let out1 = layer.forward(&hidden).unwrap();
        let out2 = layer.forward(&hidden).unwrap();
        assert_eq!(out1.rows(), 6);
        assert_eq!(out1.cols(), 32);
        assert_eq!(out1, out2);
    }

    #[test]
    fn attention_matrix_is_causal_stochastic() {
        let cfg = AttentionConfig {
            d_model: 16,
            n_heads: 2,
        };
        let layer = MultiHeadAttention::new(cfg, 3).unwrap();
        let hidden = Matrix::random_normal(5, 16, 1.0, 4);
        let probs = layer.attention_matrix(&hidden, 1).unwrap();
        for t in 0..5 {
            let row_sum: f32 = probs.row(t).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {t} sums to {row_sum}");
            for s in (t + 1)..5 {
                assert_eq!(
                    probs.get(t, s),
                    0.0,
                    "future position ({t},{s}) must be masked"
                );
            }
        }
    }

    #[test]
    fn attention_matrix_bad_head_rejected() {
        let cfg = AttentionConfig {
            d_model: 16,
            n_heads: 2,
        };
        let layer = MultiHeadAttention::new(cfg, 3).unwrap();
        let hidden = Matrix::random_normal(3, 16, 1.0, 4);
        assert!(layer.attention_matrix(&hidden, 2).is_err());
    }
}
