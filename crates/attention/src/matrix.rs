//! Minimal row-major dense matrix with the handful of kernels attention
//! needs: matmul, transpose, row softmax, top-k.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::AttentionError;

/// A row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] when `data.len() != rows*cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, AttentionError> {
        if data.len() != rows * cols {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "flat buffer of {} elements cannot be {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// A matrix with i.i.d. entries uniform in `[-scale, scale]`, seeded.
    #[must_use]
    pub fn random_uniform(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// A matrix with i.i.d. standard-normal entries scaled by `scale`, seeded.
    #[must_use]
    pub fn random_normal(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] when inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, AttentionError> {
        if self.cols != other.rows {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "matmul {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Dot product of two equal-length slices (helper used across crates).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot of unequal lengths");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// L2 norm of a slice.
    #[must_use]
    pub fn norm(a: &[f32]) -> f32 {
        Matrix::dot(a, a).sqrt()
    }
}

/// Numerically stable in-place softmax of one slice.
///
/// Max-subtracted ("safe") softmax: every exponent is `x − max ≤ 0`, so
/// `exp` can never overflow regardless of logit magnitude (a naive
/// implementation overflows to `inf`/NaN as soon as a logit exceeds ~88),
/// and the max element contributes `exp(0) = 1`, so the normalizer is
/// always ≥ 1 when the max is finite. The output is therefore a finite
/// probability distribution for **every** input:
///
/// * finite logits of any magnitude → the exact shifted softmax;
/// * `−∞` logits → weight 0 (fully masked entries);
/// * a non-finite maximum (a NaN- or `+∞`-poisoned row, or an all-`−∞`
///   row) has no well-defined distribution — the function falls back to
///   the uniform distribution so downstream weighted sums stay finite.
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    // `f32::max` skips NaN, so a NaN-poisoned row passes this check with a
    // finite max — it is caught below when NaN propagates into `sum`.
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        // +∞-poisoned or all-(−∞) row: no well-defined distribution.
        let uniform = 1.0 / xs.len() as f32;
        xs.fill(uniform);
        return;
    }
    let mut sum = 0.0f32;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if !sum.is_finite() {
        // A NaN logit survived the max reduction; same uniform fallback.
        let uniform = 1.0 / xs.len() as f32;
        xs.fill(uniform);
        return;
    }
    // The max element contributes exp(0) = 1, so sum ≥ 1 here.
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Applies [`softmax_in_place`] to every row of the matrix.
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        softmax_in_place(m.row_mut(r));
    }
}

/// In-place layer normalization of one slice: zero mean, unit variance,
/// with `eps` guarding degenerate variance.
pub fn layer_norm_in_place(xs: &mut [f32], eps: f32) {
    if xs.is_empty() {
        return;
    }
    let n = xs.len() as f32;
    let mean: f32 = xs.iter().sum::<f32>() / n;
    let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for x in xs.iter_mut() {
        *x = (*x - mean) * inv;
    }
}

/// Indices of the `k` largest values, in descending value order. Ties break
/// toward the lower index (deterministic). Returns all indices if `k >= len`.
///
/// Delegates to [`crate::kernels::partial_top_k`]: partial selection
/// instead of a full sort, total-ordered via [`f32::total_cmp`] so NaN
/// scores cannot destabilize the ranking.
#[must_use]
pub fn argtop_k(values: &[f32], k: usize) -> Vec<usize> {
    crate::kernels::partial_top_k(values, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::random_uniform(3, 5, 1.0, 7);
        let t = a.transposed().transposed();
        assert_eq!(a, t);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::random_uniform(4, 9, 3.0, 11);
        softmax_rows(&mut m);
        for r in 0..4 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![101.0f32, 102.0, 103.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut xs = vec![f32::NEG_INFINITY, 0.0, 1000.0];
        softmax_in_place(&mut xs);
        assert!((xs[2] - 1.0).abs() < 1e-6);
        assert_eq!(xs[0], 0.0);
    }

    /// Regression (satellite): logits far beyond the naive-`exp` overflow
    /// point (|x| ≳ 88) must still yield finite, normalized weights.
    #[test]
    fn softmax_extreme_logits_stay_finite_and_normalized() {
        for logits in [
            vec![9000.0f32, -9000.0, 8999.0],
            vec![1.0e8f32, 1.0e8, -1.0e8],
            vec![f32::MAX, 0.0, -f32::MAX],
            vec![-5000.0f32; 7],
        ] {
            let mut xs = logits.clone();
            softmax_in_place(&mut xs);
            assert!(
                xs.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{logits:?} -> {xs:?}"
            );
            let sum: f32 = xs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{logits:?} -> {xs:?}");
        }
    }

    /// Rows with no well-defined distribution (NaN / +inf poisoned, or
    /// fully masked all-(−∞)) fall back to uniform rather than emitting
    /// NaN weight vectors.
    #[test]
    fn softmax_degenerate_rows_fall_back_to_uniform() {
        for degenerate in [
            vec![f32::NAN, 1.0, 2.0],
            vec![f32::INFINITY, 0.0],
            vec![f32::NEG_INFINITY; 4],
        ] {
            let n = degenerate.len();
            let mut xs = degenerate.clone();
            softmax_in_place(&mut xs);
            for v in &xs {
                assert!(
                    (v - 1.0 / n as f32).abs() < 1e-7,
                    "{degenerate:?} -> {xs:?}"
                );
            }
        }
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut xs = vec![1.0f32, 2.0, 3.0, 4.0];
        layer_norm_in_place(&mut xs, 1e-6);
        let mean: f32 = xs.iter().sum::<f32>() / 4.0;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_handles_constant_input() {
        let mut xs = vec![5.0f32; 8];
        layer_norm_in_place(&mut xs, 1e-6);
        assert!(xs.iter().all(|x| x.abs() < 1e-2));
    }

    #[test]
    fn argtop_k_orders_and_breaks_ties() {
        let v = vec![0.1, 0.9, 0.5, 0.9, 0.2];
        assert_eq!(argtop_k(&v, 3), vec![1, 3, 2]);
        assert_eq!(argtop_k(&v, 10).len(), 5);
        assert_eq!(argtop_k(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn random_matrices_are_seeded() {
        let a = Matrix::random_normal(4, 4, 1.0, 42);
        let b = Matrix::random_normal(4, 4, 1.0, 42);
        let c = Matrix::random_normal(4, 4, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(Matrix::from_flat(2, 3, vec![0.0; 6]).is_ok());
        assert!(Matrix::from_flat(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(Matrix::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((Matrix::norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }
}
