//! Fixed-capacity KV storage with in-slot overwrite, laid out as a
//! logical page table over refcounted fixed-size pages.
//!
//! UniCAIM keeps the KV cache at a fixed physical size (`H + M` rows): a
//! statically evicted token's row is directly overwritten by the newly
//! generated token (paper Fig. 3b, "directly fill with newly-generated KV in
//! the statically evicted position"). [`KvStore`] models exactly that slot
//! discipline and is shared by the software policies and the hardware
//! engine.
//!
//! # Layout
//!
//! Keys, values, and the quantized key shadow live in fixed-size
//! [`Page`]s drawn from a shared [`PageArena`]; the store holds a logical
//! page table mapping slot `s` to row `s % page_rows` of page
//! `s / page_rows`. Rows never span pages, so slot `s` is still one
//! contiguous `dim`-wide slice and the decode hot path (score every
//! resident, fused attention over a selection) runs over the paged views
//! ([`PagedRows`], [`PagedQuantRows`]) with one extra indirection per
//! row. Pages are refcounted ([`PageHandle`]): cloning a store — or
//! splicing a cached prefix into a fresh one via
//! [`KvStore::from_shared_prefix`] — shares the physical pages, and any
//! write or eviction that touches a shared page copies it first
//! (copy-on-write, see the [`paged`](crate::paged) module docs). Freed
//! slots are zeroed so structural equality sees only logical content.
//!
//! Token ids must be unique across occupied slots (the token → slot index
//! requires it); writing a token that is already resident in a *different*
//! slot is rejected with [`AttentionError::DuplicateToken`].

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::kernels;
use crate::paged::{Page, PageArena, PageHandle, PagedQuantRows, PagedRows, DEFAULT_PAGE_ROWS};
use crate::AttentionError;

/// Key-arena storage precision: how [`KvStore`] stores (and the decode
/// path scores against) its keys.
///
/// The UniCAIM array stores keys in reduced-precision FeFET cells — the
/// 3-bit multilevel cell holds the five signed weights
/// {−1, −0.5, 0, +0.5, +1} per dimension — while the software harness
/// historically computed everything in `f32`. This enum closes that gap:
/// quantized stores keep a shadow `i8` key arena with one scale per row
/// (1 byte/element, a ~4× traffic reduction), and the decode hot path
/// scores queries against it with the integer kernels
/// ([`dot_prefix_q`](crate::kernels::dot_prefix_q),
/// [`attend_gather_q`](crate::kernels::attend_gather_q)). Values stay
/// `f32` in every mode, mirroring the array (only the CAM/CIM key storage
/// is reduced-precision). Queries are quantized per step to symmetric
/// `i8`, so the ablation isolates *key-storage* precision — the paper's
/// separate query-precision axis lives in `unicaim_core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision `f32` keys (the historical software path).
    #[default]
    F32,
    /// Symmetric per-row-scaled `i8` keys (±127 levels).
    Int8,
    /// Keys snapped to the 3-bit multilevel cell's five signed levels
    /// {−1, −0.5, 0, +0.5, +1} × row scale (stored as `i8` levels −2…+2).
    Cell3Bit,
}

impl Precision {
    /// Every precision, in ablation order.
    pub const ALL: [Precision; 3] = [Precision::F32, Precision::Int8, Precision::Cell3Bit];

    /// Short display label (`f32` / `int8` / `cell3`), the column key the
    /// figure pipeline emits.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
            Precision::Cell3Bit => "cell3",
        }
    }

    /// Whether keys are stored quantized (an `i8` arena exists).
    #[must_use]
    pub fn is_quantized(self) -> bool {
        self != Precision::F32
    }

    /// Quantizes one key row at this precision into `out`, returning the
    /// per-row scale (`key[i] ≈ scale · out[i]`).
    ///
    /// # Panics
    ///
    /// Panics if called on [`Precision::F32`] (no quantized arena exists)
    /// or if `src.len() != out.len()`.
    pub fn quantize_row(self, src: &[f32], out: &mut [i8]) -> f32 {
        match self {
            // lint:allow(no-panic-in-lib): documented contract — callers gate on needs_quant(), and F32 stores allocate no shadow arena to quantize into
            Precision::F32 => unreachable!("f32 stores keep no quantized arena"),
            Precision::Int8 => kernels::quantize_row_i8(src, out),
            Precision::Cell3Bit => kernels::quantize_row_cell3(src, out),
        }
    }
}

/// One stored token: key and value vectors plus the logical token id.
///
/// This is the *exchange* type at the store boundary; internally the store
/// keeps keys and values in paged arenas, not per-entry allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvEntry {
    /// Logical token position in the original sequence (0-based).
    pub token_id: usize,
    /// Key vector.
    pub key: Vec<f32>,
    /// Value vector.
    pub value: Vec<f32>,
}

/// A fixed-capacity KV cache addressed by physical slot, stored as a
/// logical page table over refcounted pages (see the `kv` module docs).
///
/// Cloning a `KvStore` is cheap: the clone shares every page with the
/// original (refcounts bump, no row is copied), and copy-on-write keeps
/// the two logically independent from the first mutation onward.
/// Equality is *logical*: two stores compare equal when their per-slot
/// contents match, regardless of how the rows are distributed over pages
/// or which arena owns them.
#[derive(Debug, Clone)]
pub struct KvStore {
    dim: usize,
    capacity: usize,
    /// Key-arena storage precision.
    precision: Precision,
    /// Rows per page (fixed per arena).
    page_rows: usize,
    /// The arena pages are drawn from and recycled into.
    arena: PageArena,
    /// The page table: slot `s` lives in `pages[s / page_rows]` at row
    /// `s % page_rows`. Always `ceil(capacity / page_rows)` entries.
    pages: Vec<PageHandle>,
    /// Logical token held by each slot.
    tokens: Vec<Option<usize>>,
    /// Token → slot index (ascending-token iteration, O(log n) lookup).
    by_token: BTreeMap<usize, usize>,
    /// Occupied-slot count (kept in sync with `tokens`).
    len: usize,
}

impl KvStore {
    /// Creates an empty store with `capacity` physical slots for vectors of
    /// dimension `dim`, storing keys at full [`Precision::F32`]. The store
    /// draws its pages from a private [`PageArena`]; use
    /// [`KvStore::with_arena`] to share one arena across stores.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`: a zero-dimension store would hand out
    /// degenerate row views in which every slot aliases the same empty
    /// row.
    #[must_use]
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self::with_precision(capacity, dim, Precision::F32)
    }

    /// Creates an empty store whose key arena is kept at the given
    /// [`Precision`]. Quantized stores additionally maintain an `i8`
    /// shadow key plane (1 byte/element) with one scale per slot; values
    /// stay `f32` in every mode.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` (same contract as [`KvStore::new`]).
    #[must_use]
    pub fn with_precision(capacity: usize, dim: usize, precision: Precision) -> Self {
        assert!(dim > 0, "KvStore requires dim > 0");
        let arena = PageArena::new(dim, DEFAULT_PAGE_ROWS);
        Self::with_arena(&arena, capacity, precision)
    }

    /// Creates an empty store drawing its pages from `arena` (the shape —
    /// `dim`, rows per page — comes from the arena, and [`PageArena::new`]
    /// already rejects degenerate shapes). Stores sharing one arena reuse
    /// each other's recycled pages and share one set of
    /// [`ArenaStats`](crate::paged::ArenaStats).
    #[must_use]
    pub fn with_arena(arena: &PageArena, capacity: usize, precision: Precision) -> Self {
        let dim = arena.dim();
        let page_rows = arena.page_rows();
        let n_pages = capacity.div_ceil(page_rows);
        let pages = (0..n_pages).map(|_| arena.alloc()).collect();
        Self {
            dim,
            capacity,
            precision,
            page_rows,
            arena: arena.clone(),
            pages,
            tokens: vec![None; capacity],
            by_token: BTreeMap::new(),
            len: 0,
        }
    }

    /// Creates a store whose first `shared.len()` page-table entries are
    /// clones of `shared` (refcount bumps, **no row is copied**) holding
    /// the prefix tokens `prefix_tokens` in slots `0..prefix_tokens.len()`;
    /// the remaining pages are fresh allocations. This is the
    /// prefix-splice fast path: the first write that lands on a shared
    /// page (typically the first decoded token, which shares the
    /// partially filled tail page) copies it on write.
    ///
    /// # Panics
    ///
    /// Panics if the shared pages don't match the arena's page shape, if
    /// they exceed the store's page table, if `prefix_tokens` addresses
    /// rows past the shared pages (or `capacity`), or if a prefix token
    /// id repeats.
    #[must_use]
    pub fn from_shared_prefix(
        arena: &PageArena,
        capacity: usize,
        precision: Precision,
        shared: &[PageHandle],
        prefix_tokens: &[usize],
    ) -> Self {
        let dim = arena.dim();
        let page_rows = arena.page_rows();
        let n_pages = capacity.div_ceil(page_rows);
        assert!(
            shared.len() <= n_pages,
            "shared prefix of {} pages exceeds the {n_pages}-page table",
            shared.len()
        );
        assert!(
            prefix_tokens.len() <= shared.len() * page_rows && prefix_tokens.len() <= capacity,
            "{} prefix tokens do not fit the shared pages / capacity {capacity}",
            prefix_tokens.len()
        );
        let mut pages: Vec<PageHandle> = Vec::with_capacity(n_pages);
        for page in shared {
            assert!(
                page.dim() == dim && page.rows() == page_rows,
                "shared page shape does not match the arena"
            );
            pages.push(Arc::clone(page));
        }
        pages.extend((shared.len()..n_pages).map(|_| arena.alloc()));
        let mut tokens = vec![None; capacity];
        let mut by_token = BTreeMap::new();
        for (slot, &token) in prefix_tokens.iter().enumerate() {
            tokens[slot] = Some(token);
            assert!(
                by_token.insert(token, slot).is_none(),
                "prefix token {token} repeats"
            );
        }
        Self {
            dim,
            capacity,
            precision,
            page_rows,
            arena: arena.clone(),
            pages,
            tokens,
            by_token,
            len: prefix_tokens.len(),
        }
    }

    /// The key-arena storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switches the key-arena precision in place, rebuilding the quantized
    /// shadow plane page by page from the retained exact `f32` keys.
    /// Shared pages are copied first (the usual copy-on-write), so other
    /// holders never observe the change; free rows stay all-zero with
    /// scale 0 (a zero row quantizes to zeros with scale 0). A no-op when
    /// the precision already matches.
    ///
    /// The [`Precision::Int8`] path runs the bulk
    /// [`kernels::quantize_arena_i8_into`] over each page's contiguous key
    /// plane, reusing one scratch pair across all pages — no per-page (or
    /// per-row) allocation.
    pub fn requantize(&mut self, precision: Precision) {
        if precision == self.precision {
            return;
        }
        self.precision = precision;
        let dim = self.dim;
        let mut q_scratch: Vec<i8> = Vec::new();
        let mut s_scratch: Vec<f32> = Vec::new();
        for idx in 0..self.pages.len() {
            let page = self.page_mut(idx);
            match precision {
                Precision::F32 => {
                    page.qkeys.fill(0);
                    page.qscales.fill(0.0);
                }
                Precision::Int8 => {
                    kernels::quantize_arena_i8_into(
                        &page.keys,
                        dim,
                        &mut q_scratch,
                        &mut s_scratch,
                    );
                    page.qkeys.copy_from_slice(&q_scratch);
                    page.qscales.copy_from_slice(&s_scratch);
                }
                Precision::Cell3Bit => {
                    for row in 0..page.qscales.len() {
                        let base = row * dim;
                        page.qscales[row] = kernels::quantize_row_cell3(
                            &page.keys[base..base + dim],
                            &mut page.qkeys[base..base + dim],
                        );
                    }
                }
            }
        }
    }

    /// Vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows per page in this store's page table.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// The page table (one handle per `page_rows` slots).
    #[must_use]
    pub fn pages(&self) -> &[PageHandle] {
        &self.pages
    }

    /// The refcount of page-table entry `idx` (1 = exclusively owned).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is past the page table.
    #[must_use]
    pub fn page_refcount(&self, idx: usize) -> usize {
        Arc::strong_count(&self.pages[idx])
    }

    /// The arena this store draws pages from.
    #[must_use]
    pub fn arena(&self) -> &PageArena {
        &self.arena
    }

    /// The first free slot index, if any.
    #[must_use]
    pub fn first_free_slot(&self) -> Option<usize> {
        self.tokens.iter().position(Option::is_none)
    }

    /// The key plane as a [`PagedRows`] view (slot `s` = logical row `s`;
    /// free slots are zero rows).
    #[must_use]
    pub fn keys_view(&self) -> PagedRows<'_> {
        PagedRows::keys(&self.pages, self.dim, self.page_rows)
    }

    /// The value plane as a [`PagedRows`] view.
    #[must_use]
    pub fn values_view(&self) -> PagedRows<'_> {
        PagedRows::values(&self.pages, self.dim, self.page_rows)
    }

    /// The quantized key plane as a [`PagedQuantRows`] view, or `None` for
    /// an [`Precision::F32`] store. Free slots are zero rows with scale 0.
    #[must_use]
    pub fn quant_keys_view(&self) -> Option<PagedQuantRows<'_>> {
        self.precision
            .is_quantized()
            .then(|| PagedQuantRows::new(&self.pages, self.dim, self.page_rows))
    }

    /// Bytes the key storage occupies at this store's precision: `f32`
    /// stores pay 4 bytes/element; quantized stores pay 1 byte/element
    /// plus one `f32` scale per slot (the ~4× reduction the quantized
    /// decode path exists for).
    #[must_use]
    pub fn key_arena_bytes(&self) -> usize {
        if self.precision.is_quantized() {
            self.capacity * self.dim * std::mem::size_of::<i8>()
                + self.capacity * std::mem::size_of::<f32>()
        } else {
            self.capacity * self.dim * std::mem::size_of::<f32>()
        }
    }

    /// Slot `s`'s page-table coordinates plus a shared page reference.
    fn page_of(&self, slot: usize) -> (&Page, usize) {
        (&self.pages[slot / self.page_rows], slot % self.page_rows)
    }

    fn key_row(&self, slot: usize) -> &[f32] {
        let (page, row) = self.page_of(slot);
        page.key_row(row)
    }

    fn value_row(&self, slot: usize) -> &[f32] {
        let (page, row) = self.page_of(slot);
        page.value_row(row)
    }

    /// Exclusive access to page-table entry `idx`, copying the page first
    /// when it is shared (refcount > 1) so no other holder observes the
    /// mutation. The displaced shared handle is offered back to the arena
    /// (a no-op unless the other holders vanished in the meantime).
    fn page_mut(&mut self, idx: usize) -> &mut Page {
        if Arc::strong_count(&self.pages[idx]) > 1 {
            let fresh = self.arena.cow_copy(&self.pages[idx]);
            let displaced = std::mem::replace(&mut self.pages[idx], fresh);
            self.arena.recycle(displaced);
        }
        // lint:allow(no-panic-in-lib): the branch above replaced any shared handle with a strong_count == 1 CoW copy, so get_mut cannot fail
        Arc::get_mut(&mut self.pages[idx]).expect("page is exclusively owned after CoW")
    }

    /// The key of `slot` as the *scoring path* sees it: the quantize →
    /// dequantize round-trip of the stored key for quantized stores, or
    /// the exact `f32` row for [`Precision::F32`]. `None` for an empty
    /// slot.
    #[must_use]
    pub fn dequantized_key(&self, slot: usize) -> Option<Vec<f32>> {
        self.token_at(slot)?;
        if self.precision.is_quantized() {
            let (page, row) = self.page_of(slot);
            let mut out = vec![0.0f32; self.dim];
            kernels::dequantize_row(page.quant_row(row), page.quant_scale(row), &mut out);
            Some(out)
        } else {
            Some(self.key_row(slot).to_vec())
        }
    }

    /// Writes `token`'s key/value into `slot` directly from slices
    /// (single-write-cycle in-place update, no per-entry allocation).
    /// Returns the token that previously occupied the slot. Writing to a
    /// slot on a shared page copies the page first.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot,
    /// [`AttentionError::ShapeMismatch`] for wrong vector dimensions, and
    /// [`AttentionError::DuplicateToken`] when `token` is already resident
    /// in a different slot.
    pub fn write_slot_parts(
        &mut self,
        slot: usize,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<Option<usize>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        if key.len() != self.dim || value.len() != self.dim {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "kv entry dims ({}, {}) do not match store dim {}",
                    key.len(),
                    value.len(),
                    self.dim
                ),
            });
        }
        if let Some(&other) = self.by_token.get(&token) {
            if other != slot {
                return Err(AttentionError::DuplicateToken { token, slot: other });
            }
        }
        let prev = self.tokens[slot];
        if let Some(p) = prev {
            self.by_token.remove(&p);
        } else {
            self.len += 1;
        }
        let dim = self.dim;
        let precision = self.precision;
        let row = slot % self.page_rows;
        let page = self.page_mut(slot / self.page_rows);
        let base = row * dim;
        page.keys[base..base + dim].copy_from_slice(key);
        page.values[base..base + dim].copy_from_slice(value);
        if precision.is_quantized() {
            page.qscales[row] = precision.quantize_row(key, &mut page.qkeys[base..base + dim]);
        }
        self.tokens[slot] = Some(token);
        self.by_token.insert(token, slot);
        Ok(prev)
    }

    /// Writes an entry into `slot`, overwriting whatever was there
    /// (single-write-cycle in-place update). Returns the previous occupant.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::write_slot_parts`].
    pub fn write_slot(
        &mut self,
        slot: usize,
        entry: KvEntry,
    ) -> Result<Option<KvEntry>, AttentionError> {
        let prev = self.entry(slot);
        self.write_slot_parts(slot, entry.token_id, &entry.key, &entry.value)?;
        Ok(prev)
    }

    /// Appends `token`'s key/value into the first free slot, returning its
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] when the store is full
    /// (index = capacity); otherwise the [`KvStore::write_slot_parts`]
    /// contract.
    pub fn append_parts(
        &mut self,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<usize, AttentionError> {
        let slot = self
            .first_free_slot()
            .ok_or(AttentionError::IndexOutOfRange {
                index: self.capacity,
                len: self.capacity,
            })?;
        self.write_slot_parts(slot, token, key, value)?;
        Ok(slot)
    }

    /// Appends into the first free slot, returning its index.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::append_parts`].
    pub fn append(&mut self, entry: KvEntry) -> Result<usize, AttentionError> {
        self.append_parts(entry.token_id, &entry.key, &entry.value)
    }

    /// Clears a slot, returning its occupant. The freed rows are zeroed;
    /// evicting a slot on a shared page copies the page *before* zeroing,
    /// so other holders keep the token.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot.
    pub fn evict_slot(&mut self, slot: usize) -> Result<Option<KvEntry>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        let prev = self.entry(slot);
        if let Some(token) = self.tokens[slot].take() {
            self.by_token.remove(&token);
            self.len -= 1;
            let dim = self.dim;
            let row = slot % self.page_rows;
            let page = self.page_mut(slot / self.page_rows);
            let base = row * dim;
            page.keys[base..base + dim].fill(0.0);
            page.values[base..base + dim].fill(0.0);
            page.qkeys[base..base + dim].fill(0);
            page.qscales[row] = 0.0;
        }
        Ok(prev)
    }

    /// The token in `slot`, if occupied.
    #[must_use]
    pub fn token_at(&self, slot: usize) -> Option<usize> {
        self.tokens.get(slot).copied().flatten()
    }

    /// The key row of `slot`, if occupied.
    #[must_use]
    pub fn key_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot).map(|_| self.key_row(slot))
    }

    /// The value row of `slot`, if occupied.
    #[must_use]
    pub fn value_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot).map(|_| self.value_row(slot))
    }

    /// The entry in `slot`, if occupied, materialized out of the pages.
    #[must_use]
    pub fn entry(&self, slot: usize) -> Option<KvEntry> {
        self.token_at(slot).map(|token_id| KvEntry {
            token_id,
            key: self.key_row(slot).to_vec(),
            value: self.value_row(slot).to_vec(),
        })
    }

    /// Iterator over `(token, slot)` for occupied slots, in **ascending
    /// token order** (the order the harness↔policy contract requires).
    pub fn iter_tokens(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.by_token.iter().map(|(&t, &s)| (t, s))
    }

    /// The physical slot currently holding the given logical token, if any.
    #[must_use]
    pub fn slot_of_token(&self, token_id: usize) -> Option<usize> {
        self.by_token.get(&token_id).copied()
    }

    /// All occupied slots' token ids, in slot order.
    #[must_use]
    pub fn token_ids(&self) -> Vec<usize> {
        self.tokens.iter().filter_map(|&t| t).collect()
    }

    /// All occupied slots' token ids, ascending.
    #[must_use]
    pub fn tokens_ascending(&self) -> Vec<usize> {
        self.by_token.keys().copied().collect()
    }
}

impl PartialEq for KvStore {
    /// Logical equality: same shape, precision, occupancy, and per-slot
    /// contents. Page-table layout (rows per page, which pages are
    /// shared, which arena owns them) is invisible — a spliced store and
    /// a cold-built one with the same rows compare equal.
    fn eq(&self, other: &Self) -> bool {
        if self.dim != other.dim
            || self.capacity != other.capacity
            || self.precision != other.precision
            || self.tokens != other.tokens
        {
            return false;
        }
        for slot in 0..self.capacity {
            if self.key_row(slot) != other.key_row(slot)
                || self.value_row(slot) != other.value_row(slot)
            {
                return false;
            }
            if self.precision.is_quantized() {
                let (sp, sr) = self.page_of(slot);
                let (op, or) = other.page_of(slot);
                if sp.quant_row(sr) != op.quant_row(or) || sp.quant_scale(sr) != op.quant_scale(or)
                {
                    return false;
                }
            }
        }
        true
    }
}

impl Drop for KvStore {
    /// Returns every page-table entry to the arena; pages whose refcount
    /// reaches zero go back to the free list for reuse.
    fn drop(&mut self) {
        for page in self.pages.drain(..) {
            self.arena.recycle(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token_id: usize, dim: usize, fill: f32) -> KvEntry {
        KvEntry {
            token_id,
            key: vec![fill; dim],
            value: vec![fill + 0.5; dim],
        }
    }

    #[test]
    fn append_fills_slots_in_order() {
        let mut store = KvStore::new(3, 4);
        assert_eq!(store.append(entry(10, 4, 0.1)).unwrap(), 0);
        assert_eq!(store.append(entry(11, 4, 0.2)).unwrap(), 1);
        assert_eq!(store.append(entry(12, 4, 0.3)).unwrap(), 2);
        assert_eq!(store.len(), 3);
        assert!(
            store.append(entry(13, 4, 0.4)).is_err(),
            "full store must reject appends"
        );
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        let prev = store.write_slot(0, entry(2, 4, 0.2)).unwrap();
        assert_eq!(prev.unwrap().token_id, 1);
        assert_eq!(store.token_at(0), Some(2));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_then_reuse_slot() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        store.append(entry(2, 4, 0.2)).unwrap();
        let evicted = store.evict_slot(0).unwrap().unwrap();
        assert_eq!(evicted.token_id, 1);
        assert_eq!(store.first_free_slot(), Some(0));
        assert_eq!(store.append(entry(3, 4, 0.3)).unwrap(), 0);
        let mut ids = store.token_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn requantize_matches_store_built_at_target_precision() {
        let dim = 7;
        let build = |precision| {
            let mut store = KvStore::with_precision(5, dim, precision);
            for t in 0..4usize {
                let key: Vec<f32> = (0..dim)
                    .map(|i| ((t * dim + i) as f32) * 0.3 - 2.0)
                    .collect();
                let value: Vec<f32> = (0..dim).map(|i| (i as f32) - t as f32).collect();
                store
                    .append(KvEntry {
                        token_id: t,
                        key,
                        value,
                    })
                    .unwrap();
            }
            store
        };
        for source in Precision::ALL {
            for target in Precision::ALL {
                let mut store = build(source);
                store.requantize(target);
                assert_eq!(store.precision(), target);
                assert_eq!(
                    store,
                    build(target),
                    "{} -> {}",
                    source.label(),
                    target.label()
                );
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut store = KvStore::new(2, 4);
        assert!(store.append(entry(1, 3, 0.1)).is_err());
    }

    #[test]
    fn slot_of_token_finds_physical_position() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(100, 2, 0.0)).unwrap();
        store.append(entry(200, 2, 0.0)).unwrap();
        assert_eq!(store.slot_of_token(200), Some(1));
        assert_eq!(store.slot_of_token(300), None);
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let mut store = KvStore::new(2, 2);
        assert!(store.write_slot(2, entry(1, 2, 0.0)).is_err());
        assert!(store.evict_slot(5).is_err());
        assert!(store.entry(9).is_none());
    }

    #[test]
    fn duplicate_token_in_other_slot_rejected() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(7, 2, 0.1)).unwrap();
        let err = store.write_slot(1, entry(7, 2, 0.2)).unwrap_err();
        assert!(matches!(
            err,
            AttentionError::DuplicateToken { token: 7, slot: 0 }
        ));
        // Rewriting the token in its own slot is fine (in-place update).
        assert!(store.write_slot(0, entry(7, 2, 0.3)).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_tokens_is_ascending_and_arena_rows_match() {
        let mut store = KvStore::new(4, 2);
        store.append(entry(30, 2, 0.3)).unwrap();
        store.append(entry(10, 2, 0.1)).unwrap();
        store.append(entry(20, 2, 0.2)).unwrap();
        let order: Vec<usize> = store.iter_tokens().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
        for (t, s) in store.iter_tokens() {
            let e = store.entry(s).unwrap();
            assert_eq!(e.token_id, t);
            assert_eq!(store.key_at(s).unwrap(), e.key.as_slice());
            assert_eq!(store.value_at(s).unwrap(), e.value.as_slice());
            assert_eq!(store.keys_view().row(s), e.key.as_slice());
            assert_eq!(store.values_view().row(s), e.value.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn zero_dim_store_rejected() {
        // Audit (satellite): a dim-0 store would hand out row views in
        // which every slot aliases the same empty row.
        let _ = KvStore::new(4, 0);
    }

    #[test]
    fn quantized_store_maintains_shadow_arena() {
        let mut store = KvStore::with_precision(3, 4, Precision::Int8);
        assert_eq!(store.precision(), Precision::Int8);
        // 1 byte/element + one f32 scale per slot vs 4 bytes/element.
        assert_eq!(store.key_arena_bytes(), 3 * 4 + 3 * 4);
        assert_eq!(KvStore::new(3, 4).key_arena_bytes(), 3 * 4 * 4);

        store
            .write_slot_parts(1, 7, &[1.0, -0.5, 0.25, 0.0], &[0.0; 4])
            .unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(1), &[127, -64, 32, 0]);
        assert!((q.scale(1) - 1.0 / 127.0).abs() < 1e-9);
        // Untouched slots are zero rows with zero scale.
        assert_eq!(q.row(0), &[0, 0, 0, 0]);
        assert_eq!(q.scale(0), 0.0);
        // F32 stores have no shadow arena.
        assert!(KvStore::new(3, 4).quant_keys_view().is_none());
    }

    #[test]
    fn quantize_dequantize_roundtrip_is_bounded() {
        let mut store = KvStore::with_precision(2, 3, Precision::Int8);
        let key = [0.9f32, -0.33, 0.141];
        store.write_slot_parts(0, 1, &key, &[0.0; 3]).unwrap();
        let back = store.dequantized_key(0).unwrap();
        let scale = store.quant_keys_view().unwrap().scale(0);
        for (x, y) in key.iter().zip(&back) {
            assert!((x - y).abs() <= scale * 0.5 + 1e-7, "{key:?} vs {back:?}");
        }
        // Empty slots have no key at all.
        assert!(store.dequantized_key(1).is_none());
        // F32 stores round-trip exactly.
        let mut f = KvStore::new(2, 3);
        f.write_slot_parts(0, 1, &key, &[0.0; 3]).unwrap();
        assert_eq!(f.dequantized_key(0).unwrap(), key.to_vec());
    }

    #[test]
    fn cell3_store_snaps_keys_to_five_levels() {
        let mut store = KvStore::with_precision(2, 5, Precision::Cell3Bit);
        store
            .write_slot_parts(0, 3, &[1.0, -1.0, 0.1, 0.6, -0.4], &[0.0; 5])
            .unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(0), &[2, -2, 0, 1, -1]);
        assert!((q.scale(0) - 0.5).abs() < 1e-9);
        // Snapped keys re-snap to themselves (idempotence).
        let snapped = store.dequantized_key(0).unwrap();
        store.write_slot_parts(1, 4, &snapped, &[0.0; 5]).unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(1), q.row(0));
        assert_eq!(q.scale(1), q.scale(0));
    }

    #[test]
    fn quantized_eviction_zeroes_shadow_rows_too() {
        let mut a = KvStore::with_precision(2, 2, Precision::Int8);
        a.append(entry(1, 2, 0.9)).unwrap();
        a.evict_slot(0).unwrap();
        a.append(entry(2, 2, 0.4)).unwrap();
        let mut b = KvStore::with_precision(2, 2, Precision::Int8);
        b.append(entry(2, 2, 0.4)).unwrap();
        assert_eq!(a, b, "eviction history must not leak into equality");
    }

    #[test]
    fn eviction_zeroes_arena_rows_for_structural_equality() {
        let mut a = KvStore::new(2, 2);
        a.append(entry(1, 2, 0.9)).unwrap();
        a.evict_slot(0).unwrap();
        a.append(entry(2, 2, 0.4)).unwrap();
        // A store that never held token 1 but has the same logical content.
        let mut b = KvStore::new(2, 2);
        b.append(entry(2, 2, 0.4)).unwrap();
        assert_eq!(a, b, "eviction history must not leak into equality");
    }

    #[test]
    fn clone_shares_pages_and_writes_copy_on_write() {
        let mut a = KvStore::new(4, 2);
        a.append(entry(1, 2, 0.1)).unwrap();
        a.append(entry(2, 2, 0.2)).unwrap();
        let b = a.clone();
        assert_eq!(a.page_refcount(0), 2, "clone must share pages");
        let before_cow = a.arena().stats().cow_copies;
        a.write_slot(0, entry(9, 2, 0.9)).unwrap();
        // The write copied the shared page; the clone is untouched.
        assert_eq!(a.arena().stats().cow_copies, before_cow + 1);
        assert_eq!(a.token_at(0), Some(9));
        assert_eq!(b.token_at(0), Some(1));
        assert_eq!(b.key_at(0).unwrap(), &[0.1, 0.1]);
        assert_eq!(a.page_refcount(0), 1);
        assert_eq!(b.page_refcount(0), 1);
    }

    #[test]
    fn evicting_on_shared_page_copies_before_zeroing() {
        // CoW edge case (satellite): eviction is a mutation like any
        // other — a shared holder must keep the token.
        let mut a = KvStore::with_precision(4, 2, Precision::Int8);
        a.append(entry(1, 2, 0.5)).unwrap();
        let b = a.clone();
        a.evict_slot(0).unwrap();
        assert_eq!(a.token_at(0), None);
        assert_eq!(b.token_at(0), Some(1), "shared holder must keep the row");
        assert_eq!(b.key_at(0).unwrap(), &[0.5, 0.5]);
        assert_ne!(b.quant_keys_view().unwrap().scale(0), 0.0);
        assert!(a.arena().stats().cow_copies >= 1);
    }

    #[test]
    fn dropping_last_holder_returns_pages_to_free_list() {
        // CoW edge case (satellite): refcount reaching zero recycles.
        let arena = PageArena::new(2, 2);
        let pages_for = |cap: usize| cap.div_ceil(2);
        {
            let mut store = KvStore::with_arena(&arena, 4, Precision::F32);
            store.append(entry(1, 2, 0.3)).unwrap();
            assert_eq!(arena.free_pages(), 0);
        }
        assert_eq!(arena.free_pages(), pages_for(4));
        assert_eq!(arena.stats().recycled as usize, pages_for(4));
        // A clone pair only recycles once both are gone.
        let store = KvStore::with_arena(&arena, 2, Precision::F32);
        let twin = store.clone();
        drop(store);
        assert_eq!(arena.free_pages(), pages_for(4) - pages_for(2));
        drop(twin);
        assert_eq!(arena.free_pages(), pages_for(4));
    }

    #[test]
    fn from_shared_prefix_splices_pages_bit_identically() {
        let arena = PageArena::new(3, 2);
        let mut cold = KvStore::with_arena(&arena, 6, Precision::Cell3Bit);
        for (i, t) in [4usize, 7, 9].iter().enumerate() {
            cold.write_slot_parts(i, *t, &[0.1 * (i as f32 + 1.0); 3], &[0.2; 3])
                .unwrap();
        }
        // Cache the pages covering the three prefix rows (2 of 3 pages).
        let shared: Vec<PageHandle> = cold.pages()[..2].to_vec();
        let spliced =
            KvStore::from_shared_prefix(&arena, 6, Precision::Cell3Bit, &shared, &[4, 7, 9]);
        assert_eq!(spliced, cold, "splice must reproduce the prefix exactly");
        assert_eq!(spliced.len(), 3);
        assert_eq!(spliced.slot_of_token(9), Some(2));
        // Shared pages: cold + registry handle + spliced = refcount 3.
        assert_eq!(spliced.page_refcount(0), 3);
        // The tail page was freshly allocated, not shared.
        assert_eq!(spliced.page_refcount(2), 1);
    }

    #[test]
    fn equality_is_logical_across_page_geometries() {
        let coarse = PageArena::new(2, 4);
        let fine = PageArena::new(2, 1);
        let mut a = KvStore::with_arena(&coarse, 3, Precision::Int8);
        let mut b = KvStore::with_arena(&fine, 3, Precision::Int8);
        for s in [&mut a, &mut b] {
            s.append(entry(5, 2, 0.7)).unwrap();
            s.append(entry(6, 2, 0.1)).unwrap();
        }
        assert_eq!(a, b, "page geometry must not affect equality");
        b.evict_slot(1).unwrap();
        assert_ne!(a, b);
    }
}
