//! Fixed-capacity KV storage with in-slot overwrite, laid out as a
//! structure of arrays.
//!
//! UniCAIM keeps the KV cache at a fixed physical size (`H + M` rows): a
//! statically evicted token's row is directly overwritten by the newly
//! generated token (paper Fig. 3b, "directly fill with newly-generated KV in
//! the statically evicted position"). [`KvStore`] models exactly that slot
//! discipline and is shared by the software policies and the hardware
//! engine.
//!
//! # Layout
//!
//! Keys and values live in two contiguous row-major arenas (`capacity × dim`
//! `f32`s each, slot `s` at `s*dim..(s+1)*dim`), with per-slot token ids in
//! a parallel metadata vector and a token → slot index for O(log n) lookup
//! and ascending-token iteration. The arenas are exposed to the flat
//! [`kernels`](crate::kernels) as [`RowView`]s, so the decode hot path
//! (score every resident, fused attention over a selection) runs over
//! contiguous memory instead of chasing one heap allocation per token.
//! Freed slots are zeroed so structural equality sees only logical content.
//!
//! Token ids must be unique across occupied slots (the token → slot index
//! requires it); writing a token that is already resident in a *different*
//! slot is rejected with [`AttentionError::DuplicateToken`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::kernels::{self, QuantRowView, RowView};
use crate::AttentionError;

/// Key-arena storage precision: how [`KvStore`] stores (and the decode
/// path scores against) its keys.
///
/// The UniCAIM array stores keys in reduced-precision FeFET cells — the
/// 3-bit multilevel cell holds the five signed weights
/// {−1, −0.5, 0, +0.5, +1} per dimension — while the software harness
/// historically computed everything in `f32`. This enum closes that gap:
/// quantized stores keep a shadow `i8` key arena with one scale per row
/// (1 byte/element, a ~4× traffic reduction), and the decode hot path
/// scores queries against it with the integer kernels
/// ([`dot_prefix_q`](crate::kernels::dot_prefix_q),
/// [`attend_gather_q`](crate::kernels::attend_gather_q)). Values stay
/// `f32` in every mode, mirroring the array (only the CAM/CIM key storage
/// is reduced-precision). Queries are quantized per step to symmetric
/// `i8`, so the ablation isolates *key-storage* precision — the paper's
/// separate query-precision axis lives in `unicaim_core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision `f32` keys (the historical software path).
    #[default]
    F32,
    /// Symmetric per-row-scaled `i8` keys (±127 levels).
    Int8,
    /// Keys snapped to the 3-bit multilevel cell's five signed levels
    /// {−1, −0.5, 0, +0.5, +1} × row scale (stored as `i8` levels −2…+2).
    Cell3Bit,
}

impl Precision {
    /// Every precision, in ablation order.
    pub const ALL: [Precision; 3] = [Precision::F32, Precision::Int8, Precision::Cell3Bit];

    /// Short display label (`f32` / `int8` / `cell3`), the column key the
    /// figure pipeline emits.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
            Precision::Cell3Bit => "cell3",
        }
    }

    /// Whether keys are stored quantized (an `i8` arena exists).
    #[must_use]
    pub fn is_quantized(self) -> bool {
        self != Precision::F32
    }

    /// Quantizes one key row at this precision into `out`, returning the
    /// per-row scale (`key[i] ≈ scale · out[i]`).
    ///
    /// # Panics
    ///
    /// Panics if called on [`Precision::F32`] (no quantized arena exists)
    /// or if `src.len() != out.len()`.
    pub fn quantize_row(self, src: &[f32], out: &mut [i8]) -> f32 {
        match self {
            Precision::F32 => unreachable!("f32 stores keep no quantized arena"),
            Precision::Int8 => kernels::quantize_row_i8(src, out),
            Precision::Cell3Bit => kernels::quantize_row_cell3(src, out),
        }
    }
}

/// One stored token: key and value vectors plus the logical token id.
///
/// This is the *exchange* type at the store boundary; internally the store
/// keeps keys and values in flat arenas, not per-entry allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvEntry {
    /// Logical token position in the original sequence (0-based).
    pub token_id: usize,
    /// Key vector.
    pub key: Vec<f32>,
    /// Value vector.
    pub value: Vec<f32>,
}

/// A fixed-capacity KV cache addressed by physical slot, stored as a
/// structure of arrays (see the `kv` module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvStore {
    dim: usize,
    capacity: usize,
    /// Key-arena storage precision.
    precision: Precision,
    /// Key arena, `capacity × dim`, row-major by slot.
    keys: Vec<f32>,
    /// Quantized key arena, `capacity × dim` `i8` levels (empty for
    /// [`Precision::F32`]); maintained in lockstep with `keys` on every
    /// write/evict.
    qkeys: Vec<i8>,
    /// Per-slot dequantization scales (empty for [`Precision::F32`]).
    qscales: Vec<f32>,
    /// Value arena, `capacity × dim`, row-major by slot.
    values: Vec<f32>,
    /// Logical token held by each slot.
    tokens: Vec<Option<usize>>,
    /// Token → slot index (ascending-token iteration, O(log n) lookup).
    by_token: BTreeMap<usize, usize>,
    /// Occupied-slot count (kept in sync with `tokens`).
    len: usize,
}

impl KvStore {
    /// Creates an empty store with `capacity` physical slots for vectors of
    /// dimension `dim`, storing keys at full [`Precision::F32`].
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`: a zero-dimension store would hand out
    /// degenerate row views in which every slot aliases the same empty
    /// row (see [`RowView::contiguous`]).
    #[must_use]
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self::with_precision(capacity, dim, Precision::F32)
    }

    /// Creates an empty store whose key arena is kept at the given
    /// [`Precision`]. Quantized stores additionally maintain an `i8`
    /// shadow key arena (1 byte/element) with one scale per slot; values
    /// stay `f32` in every mode.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` (same contract as [`KvStore::new`]).
    #[must_use]
    pub fn with_precision(capacity: usize, dim: usize, precision: Precision) -> Self {
        assert!(dim > 0, "KvStore requires dim > 0");
        let (qkeys, qscales) = if precision.is_quantized() {
            (vec![0i8; capacity * dim], vec![0.0f32; capacity])
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            dim,
            capacity,
            precision,
            keys: vec![0.0; capacity * dim],
            qkeys,
            qscales,
            values: vec![0.0; capacity * dim],
            tokens: vec![None; capacity],
            by_token: BTreeMap::new(),
            len: 0,
        }
    }

    /// The key-arena storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first free slot index, if any.
    #[must_use]
    pub fn first_free_slot(&self) -> Option<usize> {
        self.tokens.iter().position(Option::is_none)
    }

    /// The key arena as a [`RowView`] (slot `s` = row `s`; free slots are
    /// zero rows).
    #[must_use]
    pub fn keys_view(&self) -> RowView<'_> {
        RowView::contiguous(&self.keys, self.dim)
    }

    /// The value arena as a [`RowView`].
    #[must_use]
    pub fn values_view(&self) -> RowView<'_> {
        RowView::contiguous(&self.values, self.dim)
    }

    /// The quantized key arena as a [`QuantRowView`], or `None` for an
    /// [`Precision::F32`] store. Free slots are zero rows with scale 0.
    #[must_use]
    pub fn quant_keys_view(&self) -> Option<QuantRowView<'_>> {
        self.precision
            .is_quantized()
            .then(|| QuantRowView::contiguous(&self.qkeys, &self.qscales, self.dim))
    }

    /// Bytes the key arena occupies at this store's precision: `f32`
    /// stores pay 4 bytes/element; quantized stores pay 1 byte/element
    /// plus one `f32` scale per slot (the ~4× reduction the quantized
    /// decode path exists for).
    #[must_use]
    pub fn key_arena_bytes(&self) -> usize {
        if self.precision.is_quantized() {
            self.qkeys.len() * std::mem::size_of::<i8>()
                + self.qscales.len() * std::mem::size_of::<f32>()
        } else {
            self.keys.len() * std::mem::size_of::<f32>()
        }
    }

    /// The key of `slot` as the *scoring path* sees it: the quantize →
    /// dequantize round-trip of the stored key for quantized stores, or
    /// the exact `f32` row for [`Precision::F32`]. `None` for an empty
    /// slot.
    #[must_use]
    pub fn dequantized_key(&self, slot: usize) -> Option<Vec<f32>> {
        self.token_at(slot)?;
        let base = slot * self.dim;
        if self.precision.is_quantized() {
            let mut out = vec![0.0f32; self.dim];
            kernels::dequantize_row(
                &self.qkeys[base..base + self.dim],
                self.qscales[slot],
                &mut out,
            );
            Some(out)
        } else {
            Some(self.keys[base..base + self.dim].to_vec())
        }
    }

    /// Writes `token`'s key/value into `slot` directly from slices
    /// (single-write-cycle in-place update, no per-entry allocation).
    /// Returns the token that previously occupied the slot.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot,
    /// [`AttentionError::ShapeMismatch`] for wrong vector dimensions, and
    /// [`AttentionError::DuplicateToken`] when `token` is already resident
    /// in a different slot.
    pub fn write_slot_parts(
        &mut self,
        slot: usize,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<Option<usize>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        if key.len() != self.dim || value.len() != self.dim {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "kv entry dims ({}, {}) do not match store dim {}",
                    key.len(),
                    value.len(),
                    self.dim
                ),
            });
        }
        if let Some(&other) = self.by_token.get(&token) {
            if other != slot {
                return Err(AttentionError::DuplicateToken { token, slot: other });
            }
        }
        let prev = self.tokens[slot];
        if let Some(p) = prev {
            self.by_token.remove(&p);
        } else {
            self.len += 1;
        }
        let base = slot * self.dim;
        self.keys[base..base + self.dim].copy_from_slice(key);
        self.values[base..base + self.dim].copy_from_slice(value);
        if self.precision.is_quantized() {
            self.qscales[slot] = self
                .precision
                .quantize_row(key, &mut self.qkeys[base..base + self.dim]);
        }
        self.tokens[slot] = Some(token);
        self.by_token.insert(token, slot);
        Ok(prev)
    }

    /// Writes an entry into `slot`, overwriting whatever was there
    /// (single-write-cycle in-place update). Returns the previous occupant.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::write_slot_parts`].
    pub fn write_slot(
        &mut self,
        slot: usize,
        entry: KvEntry,
    ) -> Result<Option<KvEntry>, AttentionError> {
        let prev = self.entry(slot);
        self.write_slot_parts(slot, entry.token_id, &entry.key, &entry.value)?;
        Ok(prev)
    }

    /// Appends `token`'s key/value into the first free slot, returning its
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] when the store is full
    /// (index = capacity); otherwise the [`KvStore::write_slot_parts`]
    /// contract.
    pub fn append_parts(
        &mut self,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<usize, AttentionError> {
        let slot = self
            .first_free_slot()
            .ok_or(AttentionError::IndexOutOfRange {
                index: self.capacity,
                len: self.capacity,
            })?;
        self.write_slot_parts(slot, token, key, value)?;
        Ok(slot)
    }

    /// Appends into the first free slot, returning its index.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::append_parts`].
    pub fn append(&mut self, entry: KvEntry) -> Result<usize, AttentionError> {
        self.append_parts(entry.token_id, &entry.key, &entry.value)
    }

    /// Clears a slot, returning its occupant. The freed arena rows are
    /// zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot.
    pub fn evict_slot(&mut self, slot: usize) -> Result<Option<KvEntry>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        let prev = self.entry(slot);
        if let Some(token) = self.tokens[slot].take() {
            self.by_token.remove(&token);
            self.len -= 1;
            let base = slot * self.dim;
            self.keys[base..base + self.dim].fill(0.0);
            self.values[base..base + self.dim].fill(0.0);
            if self.precision.is_quantized() {
                self.qkeys[base..base + self.dim].fill(0);
                self.qscales[slot] = 0.0;
            }
        }
        Ok(prev)
    }

    /// The token in `slot`, if occupied.
    #[must_use]
    pub fn token_at(&self, slot: usize) -> Option<usize> {
        self.tokens.get(slot).copied().flatten()
    }

    /// The key row of `slot`, if occupied.
    #[must_use]
    pub fn key_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot)
            .map(|_| &self.keys[slot * self.dim..(slot + 1) * self.dim])
    }

    /// The value row of `slot`, if occupied.
    #[must_use]
    pub fn value_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot)
            .map(|_| &self.values[slot * self.dim..(slot + 1) * self.dim])
    }

    /// The entry in `slot`, if occupied, materialized out of the arenas.
    #[must_use]
    pub fn entry(&self, slot: usize) -> Option<KvEntry> {
        self.token_at(slot).map(|token_id| KvEntry {
            token_id,
            key: self.keys[slot * self.dim..(slot + 1) * self.dim].to_vec(),
            value: self.values[slot * self.dim..(slot + 1) * self.dim].to_vec(),
        })
    }

    /// Iterator over `(token, slot)` for occupied slots, in **ascending
    /// token order** (the order the harness↔policy contract requires).
    pub fn iter_tokens(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.by_token.iter().map(|(&t, &s)| (t, s))
    }

    /// The physical slot currently holding the given logical token, if any.
    #[must_use]
    pub fn slot_of_token(&self, token_id: usize) -> Option<usize> {
        self.by_token.get(&token_id).copied()
    }

    /// All occupied slots' token ids, in slot order.
    #[must_use]
    pub fn token_ids(&self) -> Vec<usize> {
        self.tokens.iter().filter_map(|&t| t).collect()
    }

    /// All occupied slots' token ids, ascending.
    #[must_use]
    pub fn tokens_ascending(&self) -> Vec<usize> {
        self.by_token.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token_id: usize, dim: usize, fill: f32) -> KvEntry {
        KvEntry {
            token_id,
            key: vec![fill; dim],
            value: vec![fill + 0.5; dim],
        }
    }

    #[test]
    fn append_fills_slots_in_order() {
        let mut store = KvStore::new(3, 4);
        assert_eq!(store.append(entry(10, 4, 0.1)).unwrap(), 0);
        assert_eq!(store.append(entry(11, 4, 0.2)).unwrap(), 1);
        assert_eq!(store.append(entry(12, 4, 0.3)).unwrap(), 2);
        assert_eq!(store.len(), 3);
        assert!(
            store.append(entry(13, 4, 0.4)).is_err(),
            "full store must reject appends"
        );
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        let prev = store.write_slot(0, entry(2, 4, 0.2)).unwrap();
        assert_eq!(prev.unwrap().token_id, 1);
        assert_eq!(store.token_at(0), Some(2));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_then_reuse_slot() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        store.append(entry(2, 4, 0.2)).unwrap();
        let evicted = store.evict_slot(0).unwrap().unwrap();
        assert_eq!(evicted.token_id, 1);
        assert_eq!(store.first_free_slot(), Some(0));
        assert_eq!(store.append(entry(3, 4, 0.3)).unwrap(), 0);
        let mut ids = store.token_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut store = KvStore::new(2, 4);
        assert!(store.append(entry(1, 3, 0.1)).is_err());
    }

    #[test]
    fn slot_of_token_finds_physical_position() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(100, 2, 0.0)).unwrap();
        store.append(entry(200, 2, 0.0)).unwrap();
        assert_eq!(store.slot_of_token(200), Some(1));
        assert_eq!(store.slot_of_token(300), None);
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let mut store = KvStore::new(2, 2);
        assert!(store.write_slot(2, entry(1, 2, 0.0)).is_err());
        assert!(store.evict_slot(5).is_err());
        assert!(store.entry(9).is_none());
    }

    #[test]
    fn duplicate_token_in_other_slot_rejected() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(7, 2, 0.1)).unwrap();
        let err = store.write_slot(1, entry(7, 2, 0.2)).unwrap_err();
        assert!(matches!(
            err,
            AttentionError::DuplicateToken { token: 7, slot: 0 }
        ));
        // Rewriting the token in its own slot is fine (in-place update).
        assert!(store.write_slot(0, entry(7, 2, 0.3)).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_tokens_is_ascending_and_arena_rows_match() {
        let mut store = KvStore::new(4, 2);
        store.append(entry(30, 2, 0.3)).unwrap();
        store.append(entry(10, 2, 0.1)).unwrap();
        store.append(entry(20, 2, 0.2)).unwrap();
        let order: Vec<usize> = store.iter_tokens().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
        for (t, s) in store.iter_tokens() {
            let e = store.entry(s).unwrap();
            assert_eq!(e.token_id, t);
            assert_eq!(store.key_at(s).unwrap(), e.key.as_slice());
            assert_eq!(store.value_at(s).unwrap(), e.value.as_slice());
            assert_eq!(store.keys_view().row(s), e.key.as_slice());
            assert_eq!(store.values_view().row(s), e.value.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn zero_dim_store_rejected() {
        // Audit (satellite): a dim-0 store would hand out row views in
        // which every slot aliases the same empty row.
        let _ = KvStore::new(4, 0);
    }

    #[test]
    fn quantized_store_maintains_shadow_arena() {
        let mut store = KvStore::with_precision(3, 4, Precision::Int8);
        assert_eq!(store.precision(), Precision::Int8);
        // 1 byte/element + one f32 scale per slot vs 4 bytes/element.
        assert_eq!(store.key_arena_bytes(), 3 * 4 + 3 * 4);
        assert_eq!(KvStore::new(3, 4).key_arena_bytes(), 3 * 4 * 4);

        store
            .write_slot_parts(1, 7, &[1.0, -0.5, 0.25, 0.0], &[0.0; 4])
            .unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(1), &[127, -64, 32, 0]);
        assert!((q.scale(1) - 1.0 / 127.0).abs() < 1e-9);
        // Untouched slots are zero rows with zero scale.
        assert_eq!(q.row(0), &[0, 0, 0, 0]);
        assert_eq!(q.scale(0), 0.0);
        // F32 stores have no shadow arena.
        assert!(KvStore::new(3, 4).quant_keys_view().is_none());
    }

    #[test]
    fn quantize_dequantize_roundtrip_is_bounded() {
        let mut store = KvStore::with_precision(2, 3, Precision::Int8);
        let key = [0.9f32, -0.33, 0.141];
        store.write_slot_parts(0, 1, &key, &[0.0; 3]).unwrap();
        let back = store.dequantized_key(0).unwrap();
        let scale = store.quant_keys_view().unwrap().scale(0);
        for (x, y) in key.iter().zip(&back) {
            assert!((x - y).abs() <= scale * 0.5 + 1e-7, "{key:?} vs {back:?}");
        }
        // Empty slots have no key at all.
        assert!(store.dequantized_key(1).is_none());
        // F32 stores round-trip exactly.
        let mut f = KvStore::new(2, 3);
        f.write_slot_parts(0, 1, &key, &[0.0; 3]).unwrap();
        assert_eq!(f.dequantized_key(0).unwrap(), key.to_vec());
    }

    #[test]
    fn cell3_store_snaps_keys_to_five_levels() {
        let mut store = KvStore::with_precision(2, 5, Precision::Cell3Bit);
        store
            .write_slot_parts(0, 3, &[1.0, -1.0, 0.1, 0.6, -0.4], &[0.0; 5])
            .unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(0), &[2, -2, 0, 1, -1]);
        assert!((q.scale(0) - 0.5).abs() < 1e-9);
        // Snapped keys re-snap to themselves (idempotence).
        let snapped = store.dequantized_key(0).unwrap();
        store.write_slot_parts(1, 4, &snapped, &[0.0; 5]).unwrap();
        let q = store.quant_keys_view().unwrap();
        assert_eq!(q.row(1), q.row(0));
        assert_eq!(q.scale(1), q.scale(0));
    }

    #[test]
    fn quantized_eviction_zeroes_shadow_rows_too() {
        let mut a = KvStore::with_precision(2, 2, Precision::Int8);
        a.append(entry(1, 2, 0.9)).unwrap();
        a.evict_slot(0).unwrap();
        a.append(entry(2, 2, 0.4)).unwrap();
        let mut b = KvStore::with_precision(2, 2, Precision::Int8);
        b.append(entry(2, 2, 0.4)).unwrap();
        assert_eq!(a, b, "eviction history must not leak into equality");
    }

    #[test]
    fn eviction_zeroes_arena_rows_for_structural_equality() {
        let mut a = KvStore::new(2, 2);
        a.append(entry(1, 2, 0.9)).unwrap();
        a.evict_slot(0).unwrap();
        a.append(entry(2, 2, 0.4)).unwrap();
        // A store that never held token 1 but has the same logical content.
        let mut b = KvStore::new(2, 2);
        b.append(entry(2, 2, 0.4)).unwrap();
        assert_eq!(a, b, "eviction history must not leak into equality");
    }
}
