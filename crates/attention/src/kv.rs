//! Fixed-capacity KV storage with in-slot overwrite.
//!
//! UniCAIM keeps the KV cache at a fixed physical size (`H + M` rows): a
//! statically evicted token's row is directly overwritten by the newly
//! generated token (paper Fig. 3b, "directly fill with newly-generated KV in
//! the statically evicted position"). [`KvStore`] models exactly that slot
//! discipline and is shared by the software policies and the hardware
//! engine.

use serde::{Deserialize, Serialize};

use crate::AttentionError;

/// One stored token: key and value vectors plus the logical token id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvEntry {
    /// Logical token position in the original sequence (0-based).
    pub token_id: usize,
    /// Key vector.
    pub key: Vec<f32>,
    /// Value vector.
    pub value: Vec<f32>,
}

/// A fixed-capacity KV cache addressed by physical slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvStore {
    dim: usize,
    capacity: usize,
    slots: Vec<Option<KvEntry>>,
}

impl KvStore {
    /// Creates an empty store with `capacity` physical slots for vectors of
    /// dimension `dim`.
    #[must_use]
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self {
            dim,
            capacity,
            slots: vec![None; capacity],
        }
    }

    /// Vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The first free slot index, if any.
    #[must_use]
    pub fn first_free_slot(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    /// Writes an entry into `slot`, overwriting whatever was there
    /// (single-write-cycle in-place update). Returns the previous occupant.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot and
    /// [`AttentionError::ShapeMismatch`] for wrong vector dimensions.
    pub fn write_slot(
        &mut self,
        slot: usize,
        entry: KvEntry,
    ) -> Result<Option<KvEntry>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        if entry.key.len() != self.dim || entry.value.len() != self.dim {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "kv entry dims ({}, {}) do not match store dim {}",
                    entry.key.len(),
                    entry.value.len(),
                    self.dim
                ),
            });
        }
        Ok(self.slots[slot].replace(entry))
    }

    /// Appends into the first free slot, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] when the store is full
    /// (index = capacity), or [`AttentionError::ShapeMismatch`] for wrong
    /// dimensions.
    pub fn append(&mut self, entry: KvEntry) -> Result<usize, AttentionError> {
        let slot = self
            .first_free_slot()
            .ok_or(AttentionError::IndexOutOfRange {
                index: self.capacity,
                len: self.capacity,
            })?;
        self.write_slot(slot, entry)?;
        Ok(slot)
    }

    /// Clears a slot, returning its occupant.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot.
    pub fn evict_slot(&mut self, slot: usize) -> Result<Option<KvEntry>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        Ok(self.slots[slot].take())
    }

    /// The entry in `slot`, if occupied.
    #[must_use]
    pub fn slot(&self, slot: usize) -> Option<&KvEntry> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Iterator over `(slot, entry)` for occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &KvEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// The physical slot currently holding the given logical token, if any.
    #[must_use]
    pub fn slot_of_token(&self, token_id: usize) -> Option<usize> {
        self.iter()
            .find(|(_, e)| e.token_id == token_id)
            .map(|(i, _)| i)
    }

    /// All occupied slots' token ids, in slot order.
    #[must_use]
    pub fn token_ids(&self) -> Vec<usize> {
        self.iter().map(|(_, e)| e.token_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token_id: usize, dim: usize, fill: f32) -> KvEntry {
        KvEntry {
            token_id,
            key: vec![fill; dim],
            value: vec![fill + 0.5; dim],
        }
    }

    #[test]
    fn append_fills_slots_in_order() {
        let mut store = KvStore::new(3, 4);
        assert_eq!(store.append(entry(10, 4, 0.1)).unwrap(), 0);
        assert_eq!(store.append(entry(11, 4, 0.2)).unwrap(), 1);
        assert_eq!(store.append(entry(12, 4, 0.3)).unwrap(), 2);
        assert_eq!(store.len(), 3);
        assert!(
            store.append(entry(13, 4, 0.4)).is_err(),
            "full store must reject appends"
        );
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        let prev = store.write_slot(0, entry(2, 4, 0.2)).unwrap();
        assert_eq!(prev.unwrap().token_id, 1);
        assert_eq!(store.slot(0).unwrap().token_id, 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_then_reuse_slot() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        store.append(entry(2, 4, 0.2)).unwrap();
        let evicted = store.evict_slot(0).unwrap().unwrap();
        assert_eq!(evicted.token_id, 1);
        assert_eq!(store.first_free_slot(), Some(0));
        assert_eq!(store.append(entry(3, 4, 0.3)).unwrap(), 0);
        let mut ids = store.token_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut store = KvStore::new(2, 4);
        assert!(store.append(entry(1, 3, 0.1)).is_err());
    }

    #[test]
    fn slot_of_token_finds_physical_position() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(100, 2, 0.0)).unwrap();
        store.append(entry(200, 2, 0.0)).unwrap();
        assert_eq!(store.slot_of_token(200), Some(1));
        assert_eq!(store.slot_of_token(300), None);
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let mut store = KvStore::new(2, 2);
        assert!(store.write_slot(2, entry(1, 2, 0.0)).is_err());
        assert!(store.evict_slot(5).is_err());
        assert!(store.slot(9).is_none());
    }
}
