//! Fixed-capacity KV storage with in-slot overwrite, laid out as a
//! structure of arrays.
//!
//! UniCAIM keeps the KV cache at a fixed physical size (`H + M` rows): a
//! statically evicted token's row is directly overwritten by the newly
//! generated token (paper Fig. 3b, "directly fill with newly-generated KV in
//! the statically evicted position"). [`KvStore`] models exactly that slot
//! discipline and is shared by the software policies and the hardware
//! engine.
//!
//! # Layout
//!
//! Keys and values live in two contiguous row-major arenas (`capacity × dim`
//! `f32`s each, slot `s` at `s*dim..(s+1)*dim`), with per-slot token ids in
//! a parallel metadata vector and a token → slot index for O(log n) lookup
//! and ascending-token iteration. The arenas are exposed to the flat
//! [`kernels`](crate::kernels) as [`RowView`]s, so the decode hot path
//! (score every resident, fused attention over a selection) runs over
//! contiguous memory instead of chasing one heap allocation per token.
//! Freed slots are zeroed so structural equality sees only logical content.
//!
//! Token ids must be unique across occupied slots (the token → slot index
//! requires it); writing a token that is already resident in a *different*
//! slot is rejected with [`AttentionError::DuplicateToken`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::kernels::RowView;
use crate::AttentionError;

/// One stored token: key and value vectors plus the logical token id.
///
/// This is the *exchange* type at the store boundary; internally the store
/// keeps keys and values in flat arenas, not per-entry allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvEntry {
    /// Logical token position in the original sequence (0-based).
    pub token_id: usize,
    /// Key vector.
    pub key: Vec<f32>,
    /// Value vector.
    pub value: Vec<f32>,
}

/// A fixed-capacity KV cache addressed by physical slot, stored as a
/// structure of arrays (see the `kv` module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvStore {
    dim: usize,
    capacity: usize,
    /// Key arena, `capacity × dim`, row-major by slot.
    keys: Vec<f32>,
    /// Value arena, `capacity × dim`, row-major by slot.
    values: Vec<f32>,
    /// Logical token held by each slot.
    tokens: Vec<Option<usize>>,
    /// Token → slot index (ascending-token iteration, O(log n) lookup).
    by_token: BTreeMap<usize, usize>,
    /// Occupied-slot count (kept in sync with `tokens`).
    len: usize,
}

impl KvStore {
    /// Creates an empty store with `capacity` physical slots for vectors of
    /// dimension `dim`.
    #[must_use]
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self {
            dim,
            capacity,
            keys: vec![0.0; capacity * dim],
            values: vec![0.0; capacity * dim],
            tokens: vec![None; capacity],
            by_token: BTreeMap::new(),
            len: 0,
        }
    }

    /// Vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first free slot index, if any.
    #[must_use]
    pub fn first_free_slot(&self) -> Option<usize> {
        self.tokens.iter().position(Option::is_none)
    }

    /// The key arena as a [`RowView`] (slot `s` = row `s`; free slots are
    /// zero rows).
    #[must_use]
    pub fn keys_view(&self) -> RowView<'_> {
        RowView::contiguous(&self.keys, self.dim)
    }

    /// The value arena as a [`RowView`].
    #[must_use]
    pub fn values_view(&self) -> RowView<'_> {
        RowView::contiguous(&self.values, self.dim)
    }

    /// Writes `token`'s key/value into `slot` directly from slices
    /// (single-write-cycle in-place update, no per-entry allocation).
    /// Returns the token that previously occupied the slot.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot,
    /// [`AttentionError::ShapeMismatch`] for wrong vector dimensions, and
    /// [`AttentionError::DuplicateToken`] when `token` is already resident
    /// in a different slot.
    pub fn write_slot_parts(
        &mut self,
        slot: usize,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<Option<usize>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        if key.len() != self.dim || value.len() != self.dim {
            return Err(AttentionError::ShapeMismatch {
                context: format!(
                    "kv entry dims ({}, {}) do not match store dim {}",
                    key.len(),
                    value.len(),
                    self.dim
                ),
            });
        }
        if let Some(&other) = self.by_token.get(&token) {
            if other != slot {
                return Err(AttentionError::DuplicateToken { token, slot: other });
            }
        }
        let prev = self.tokens[slot];
        if let Some(p) = prev {
            self.by_token.remove(&p);
        } else {
            self.len += 1;
        }
        let base = slot * self.dim;
        self.keys[base..base + self.dim].copy_from_slice(key);
        self.values[base..base + self.dim].copy_from_slice(value);
        self.tokens[slot] = Some(token);
        self.by_token.insert(token, slot);
        Ok(prev)
    }

    /// Writes an entry into `slot`, overwriting whatever was there
    /// (single-write-cycle in-place update). Returns the previous occupant.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::write_slot_parts`].
    pub fn write_slot(
        &mut self,
        slot: usize,
        entry: KvEntry,
    ) -> Result<Option<KvEntry>, AttentionError> {
        let prev = self.entry(slot);
        self.write_slot_parts(slot, entry.token_id, &entry.key, &entry.value)?;
        Ok(prev)
    }

    /// Appends `token`'s key/value into the first free slot, returning its
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] when the store is full
    /// (index = capacity); otherwise the [`KvStore::write_slot_parts`]
    /// contract.
    pub fn append_parts(
        &mut self,
        token: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<usize, AttentionError> {
        let slot = self
            .first_free_slot()
            .ok_or(AttentionError::IndexOutOfRange {
                index: self.capacity,
                len: self.capacity,
            })?;
        self.write_slot_parts(slot, token, key, value)?;
        Ok(slot)
    }

    /// Appends into the first free slot, returning its index.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvStore::append_parts`].
    pub fn append(&mut self, entry: KvEntry) -> Result<usize, AttentionError> {
        self.append_parts(entry.token_id, &entry.key, &entry.value)
    }

    /// Clears a slot, returning its occupant. The freed arena rows are
    /// zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] for a bad slot.
    pub fn evict_slot(&mut self, slot: usize) -> Result<Option<KvEntry>, AttentionError> {
        if slot >= self.capacity {
            return Err(AttentionError::IndexOutOfRange {
                index: slot,
                len: self.capacity,
            });
        }
        let prev = self.entry(slot);
        if let Some(token) = self.tokens[slot].take() {
            self.by_token.remove(&token);
            self.len -= 1;
            let base = slot * self.dim;
            self.keys[base..base + self.dim].fill(0.0);
            self.values[base..base + self.dim].fill(0.0);
        }
        Ok(prev)
    }

    /// The token in `slot`, if occupied.
    #[must_use]
    pub fn token_at(&self, slot: usize) -> Option<usize> {
        self.tokens.get(slot).copied().flatten()
    }

    /// The key row of `slot`, if occupied.
    #[must_use]
    pub fn key_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot)
            .map(|_| &self.keys[slot * self.dim..(slot + 1) * self.dim])
    }

    /// The value row of `slot`, if occupied.
    #[must_use]
    pub fn value_at(&self, slot: usize) -> Option<&[f32]> {
        self.token_at(slot)
            .map(|_| &self.values[slot * self.dim..(slot + 1) * self.dim])
    }

    /// The entry in `slot`, if occupied, materialized out of the arenas.
    #[must_use]
    pub fn entry(&self, slot: usize) -> Option<KvEntry> {
        self.token_at(slot).map(|token_id| KvEntry {
            token_id,
            key: self.keys[slot * self.dim..(slot + 1) * self.dim].to_vec(),
            value: self.values[slot * self.dim..(slot + 1) * self.dim].to_vec(),
        })
    }

    /// Iterator over `(token, slot)` for occupied slots, in **ascending
    /// token order** (the order the harness↔policy contract requires).
    pub fn iter_tokens(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.by_token.iter().map(|(&t, &s)| (t, s))
    }

    /// The physical slot currently holding the given logical token, if any.
    #[must_use]
    pub fn slot_of_token(&self, token_id: usize) -> Option<usize> {
        self.by_token.get(&token_id).copied()
    }

    /// All occupied slots' token ids, in slot order.
    #[must_use]
    pub fn token_ids(&self) -> Vec<usize> {
        self.tokens.iter().filter_map(|&t| t).collect()
    }

    /// All occupied slots' token ids, ascending.
    #[must_use]
    pub fn tokens_ascending(&self) -> Vec<usize> {
        self.by_token.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token_id: usize, dim: usize, fill: f32) -> KvEntry {
        KvEntry {
            token_id,
            key: vec![fill; dim],
            value: vec![fill + 0.5; dim],
        }
    }

    #[test]
    fn append_fills_slots_in_order() {
        let mut store = KvStore::new(3, 4);
        assert_eq!(store.append(entry(10, 4, 0.1)).unwrap(), 0);
        assert_eq!(store.append(entry(11, 4, 0.2)).unwrap(), 1);
        assert_eq!(store.append(entry(12, 4, 0.3)).unwrap(), 2);
        assert_eq!(store.len(), 3);
        assert!(
            store.append(entry(13, 4, 0.4)).is_err(),
            "full store must reject appends"
        );
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        let prev = store.write_slot(0, entry(2, 4, 0.2)).unwrap();
        assert_eq!(prev.unwrap().token_id, 1);
        assert_eq!(store.token_at(0), Some(2));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_then_reuse_slot() {
        let mut store = KvStore::new(2, 4);
        store.append(entry(1, 4, 0.1)).unwrap();
        store.append(entry(2, 4, 0.2)).unwrap();
        let evicted = store.evict_slot(0).unwrap().unwrap();
        assert_eq!(evicted.token_id, 1);
        assert_eq!(store.first_free_slot(), Some(0));
        assert_eq!(store.append(entry(3, 4, 0.3)).unwrap(), 0);
        let mut ids = store.token_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut store = KvStore::new(2, 4);
        assert!(store.append(entry(1, 3, 0.1)).is_err());
    }

    #[test]
    fn slot_of_token_finds_physical_position() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(100, 2, 0.0)).unwrap();
        store.append(entry(200, 2, 0.0)).unwrap();
        assert_eq!(store.slot_of_token(200), Some(1));
        assert_eq!(store.slot_of_token(300), None);
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let mut store = KvStore::new(2, 2);
        assert!(store.write_slot(2, entry(1, 2, 0.0)).is_err());
        assert!(store.evict_slot(5).is_err());
        assert!(store.entry(9).is_none());
    }

    #[test]
    fn duplicate_token_in_other_slot_rejected() {
        let mut store = KvStore::new(3, 2);
        store.append(entry(7, 2, 0.1)).unwrap();
        let err = store.write_slot(1, entry(7, 2, 0.2)).unwrap_err();
        assert!(matches!(
            err,
            AttentionError::DuplicateToken { token: 7, slot: 0 }
        ));
        // Rewriting the token in its own slot is fine (in-place update).
        assert!(store.write_slot(0, entry(7, 2, 0.3)).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_tokens_is_ascending_and_arena_rows_match() {
        let mut store = KvStore::new(4, 2);
        store.append(entry(30, 2, 0.3)).unwrap();
        store.append(entry(10, 2, 0.1)).unwrap();
        store.append(entry(20, 2, 0.2)).unwrap();
        let order: Vec<usize> = store.iter_tokens().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
        for (t, s) in store.iter_tokens() {
            let e = store.entry(s).unwrap();
            assert_eq!(e.token_id, t);
            assert_eq!(store.key_at(s).unwrap(), e.key.as_slice());
            assert_eq!(store.value_at(s).unwrap(), e.value.as_slice());
            assert_eq!(store.keys_view().row(s), e.key.as_slice());
            assert_eq!(store.values_view().row(s), e.value.as_slice());
        }
    }

    #[test]
    fn eviction_zeroes_arena_rows_for_structural_equality() {
        let mut a = KvStore::new(2, 2);
        a.append(entry(1, 2, 0.9)).unwrap();
        a.evict_slot(0).unwrap();
        a.append(entry(2, 2, 0.4)).unwrap();
        // A store that never held token 1 but has the same logical content.
        let mut b = KvStore::new(2, 2);
        b.append(entry(2, 2, 0.4)).unwrap();
        assert_eq!(a, b, "eviction history must not leak into equality");
    }
}
