//! Evaluation metrics: set retrieval precision/recall/F1 and vector
//! fidelity measures.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Precision / recall / F1 of a predicted index set against a ground-truth
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetF1 {
    /// |predicted ∩ truth| / |predicted| (1.0 for an empty prediction of an
    /// empty truth).
    pub precision: f64,
    /// |predicted ∩ truth| / |truth| (1.0 for an empty truth).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes [`SetF1`] between a predicted and a ground-truth index set.
#[must_use]
pub fn set_f1(predicted: &BTreeSet<usize>, truth: &BTreeSet<usize>) -> SetF1 {
    let hits = predicted.intersection(truth).count() as f64;
    let precision = if predicted.is_empty() {
        if truth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hits / predicted.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits / truth.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    SetF1 {
        precision,
        recall,
        f1,
    }
}

/// Cosine similarity between two vectors (0 when either norm vanishes).
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine of unequal lengths");
    let dot: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| f64::from(x) * f64::from(y))
        .sum();
    let na: f64 = a
        .iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .iter()
        .map(|&y| f64::from(y) * f64::from(y))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Relative L2 error `‖a − b‖ / ‖b‖` of an approximation `a` against a
/// reference `b` (returns `‖a‖` when the reference is zero).
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn relative_l2_error(approx: &[f32], reference: &[f32]) -> f64 {
    assert_eq!(
        approx.len(),
        reference.len(),
        "relative error of unequal lengths"
    );
    let num: f64 = approx
        .iter()
        .zip(reference)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference
        .iter()
        .map(|&y| f64::from(y) * f64::from(y))
        .sum::<f64>()
        .sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Running mean helper for aggregating per-step metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// The mean so far (0.0 when empty).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> BTreeSet<usize> {
        xs.iter().copied().collect()
    }

    #[test]
    fn f1_perfect_match() {
        let s = set_f1(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn f1_disjoint_sets() {
        let s = set_f1(&set(&[1, 2]), &set(&[3, 4]));
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        // predicted {1,2,3,4}, truth {3,4,5}: P=0.5, R=2/3.
        let s = set_f1(&set(&[1, 2, 3, 4]), &set(&[3, 4, 5]));
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        let expect = 2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0);
        assert!((s.f1 - expect).abs() < 1e-12);
    }

    #[test]
    fn f1_empty_edge_cases() {
        assert_eq!(set_f1(&set(&[]), &set(&[])).f1, 1.0);
        assert_eq!(set_f1(&set(&[1]), &set(&[])).recall, 1.0);
        assert_eq!(set_f1(&set(&[]), &set(&[1])).f1, 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_l2_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = relative_l2_error(&[2.0, 0.0], &[1.0, 0.0]);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = Mean::new();
        assert_eq!(m.value(), 0.0);
        m.push(1.0);
        m.push(3.0);
        assert_eq!(m.value(), 2.0);
        assert_eq!(m.count(), 2);
    }
}
