//! Fixed-size refcounted KV pages and the shared [`PageArena`] that owns
//! their allocation lifecycle.
//!
//! The flat structure-of-arrays layout [`KvStore`](crate::KvStore) used
//! historically keeps one private `capacity × dim` arena per store, so N
//! sessions decoding against the same system prompt hold N physical copies
//! of identical prefix rows. This module restructures the storage into
//! **pages**: fixed-size blocks of [`Page::rows`] KV rows (key plane,
//! value plane, and the quantized key shadow in lockstep) handed out as
//! refcounted [`PageHandle`]s. A store's "arena" becomes a logical page
//! table mapping slot `s` to `(page s / rows, row s % rows)`, and two
//! stores that share a prefix simply hold clones of the same handles.
//!
//! # Refcount / copy-on-write invariants
//!
//! * A page's refcount is its [`PageHandle`] strong count. A page with
//!   refcount 1 is **exclusively owned** and may be mutated in place.
//! * A write or eviction that touches a page with refcount > 1 must first
//!   **copy on write**: the mutating store replaces its handle with a
//!   fresh copy of the page (allocated through the arena, which counts
//!   the copy), leaving every other holder's view bit-identical. No
//!   mutation is ever visible through someone else's handle.
//! * When the last handle to a page drops, the page is returned to its
//!   arena's **free list** ([`PageArena::recycle`]) zeroed, ready for
//!   reuse — the arena never leaks pages and never hands out a dirty one.
//!
//! # Eviction story
//!
//! The arena itself never evicts: it is an allocator with reuse
//! accounting. Capacity pressure is handled one level up — the
//! `PrefixRegistry` in `unicaim-kvcache` drops its cached page runs in
//! LRU order when the number of pages it pins exceeds its budget, which
//! releases refcounts and (once sessions also retire) lets
//! [`PageArena::recycle`] reclaim the memory.

use std::sync::{Arc, Mutex};

/// Rows per page when a store allocates its own arena: small enough that
/// a partially filled tail page wastes little, large enough that the
/// slot → page indirection stays off the profile.
pub const DEFAULT_PAGE_ROWS: usize = 16;

/// One fixed-size block of KV rows: `rows × dim` keys and values plus the
/// quantized key shadow (`i8` levels and one scale per row), all zeroed
/// until written. Pages are immutable while shared — mutation goes
/// through a [`PageHandle`] with refcount 1 (see the module docs).
#[derive(Debug, Clone)]
pub struct Page {
    dim: usize,
    rows: usize,
    pub(crate) keys: Vec<f32>,
    pub(crate) values: Vec<f32>,
    pub(crate) qkeys: Vec<i8>,
    pub(crate) qscales: Vec<f32>,
}

impl Page {
    fn zeroed(dim: usize, rows: usize) -> Self {
        Self {
            dim,
            rows,
            keys: vec![0.0; rows * dim],
            values: vec![0.0; rows * dim],
            qkeys: vec![0; rows * dim],
            qscales: vec![0.0; rows],
        }
    }

    fn zero(&mut self) {
        self.keys.fill(0.0);
        self.values.fill(0.0);
        self.qkeys.fill(0);
        self.qscales.fill(0.0);
    }

    fn copy_from(&mut self, src: &Page) {
        debug_assert_eq!(self.dim, src.dim);
        debug_assert_eq!(self.rows, src.rows);
        self.keys.copy_from_slice(&src.keys);
        self.values.copy_from_slice(&src.values);
        self.qkeys.copy_from_slice(&src.qkeys);
        self.qscales.copy_from_slice(&src.qscales);
    }

    /// Row width of this page's KV vectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows this page holds.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The key row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    #[must_use]
    pub fn key_row(&self, r: usize) -> &[f32] {
        &self.keys[r * self.dim..(r + 1) * self.dim]
    }

    /// The value row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    #[must_use]
    pub fn value_row(&self, r: usize) -> &[f32] {
        &self.values[r * self.dim..(r + 1) * self.dim]
    }

    /// The quantized key levels of row `r` (all zeros in an `f32` store).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    #[must_use]
    pub fn quant_row(&self, r: usize) -> &[i8] {
        &self.qkeys[r * self.dim..(r + 1) * self.dim]
    }

    /// The dequantization scale of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    #[must_use]
    pub fn quant_scale(&self, r: usize) -> f32 {
        self.qscales[r]
    }
}

/// A refcounted handle to a [`Page`]. The strong count *is* the page's
/// refcount: 1 means exclusively owned (mutable in place), more means
/// shared (mutation requires copy-on-write).
pub type PageHandle = Arc<Page>;

/// Allocation / reuse counters of a [`PageArena`] (monotonic over the
/// arena's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Pages created fresh (heap allocations).
    pub allocated: u64,
    /// Allocations served from the free list instead of the heap.
    pub reused: u64,
    /// Pages whose last handle was returned and that went back to the
    /// free list.
    pub recycled: u64,
    /// Copy-on-write copies made because a write touched a shared page.
    pub cow_copies: u64,
}

/// The shared page allocator: hands out zeroed [`PageHandle`]s, reclaims
/// pages whose refcount reached zero into a free list, and accounts
/// copy-on-write traffic. Cloning a `PageArena` clones the *handle* —
/// all clones share one free list and one set of counters, which is what
/// lets many stores (and a prefix registry) draw from one pool.
///
/// See the module docs for the refcount/CoW invariants and the eviction
/// story.
#[derive(Debug, Clone)]
pub struct PageArena {
    inner: Arc<Mutex<ArenaInner>>,
    dim: usize,
    page_rows: usize,
}

#[derive(Debug, Default)]
struct ArenaInner {
    free: Vec<Page>,
    stats: ArenaStats,
}

impl PageArena {
    /// Creates an arena for pages of `page_rows` rows of width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `page_rows == 0` (degenerate pages would
    /// alias every row, same contract as
    /// [`KvStore::new`](crate::KvStore::new)).
    #[must_use]
    pub fn new(dim: usize, page_rows: usize) -> Self {
        assert!(dim > 0, "PageArena requires dim > 0");
        assert!(page_rows > 0, "PageArena requires page_rows > 0");
        Self {
            inner: Arc::new(Mutex::new(ArenaInner::default())),
            dim,
            page_rows,
        }
    }

    /// Row width of every page this arena hands out.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows per page.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, ArenaInner> {
        // The free list stays valid even if a holder panicked mid-call
        // (every mutation is a single push/pop), so recover from
        // poisoning instead of cascading the panic across sessions.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn take_or_create(&self) -> Page {
        let mut inner = self.locked();
        match inner.free.pop() {
            Some(page) => {
                // Free-list pages were zeroed when recycled.
                inner.stats.reused += 1;
                page
            }
            None => {
                inner.stats.allocated += 1;
                Page::zeroed(self.dim, self.page_rows)
            }
        }
    }

    /// Allocates a zeroed page (from the free list when possible).
    #[must_use]
    pub fn alloc(&self) -> PageHandle {
        Arc::new(self.take_or_create())
    }

    /// Allocates a page holding a copy of `src`'s contents — the
    /// copy-on-write step, counted in [`ArenaStats::cow_copies`].
    ///
    /// # Panics
    ///
    /// Panics if `src` came from an arena with a different page shape.
    #[must_use]
    pub fn cow_copy(&self, src: &PageHandle) -> PageHandle {
        assert_eq!(src.dim(), self.dim, "page dim mismatch");
        assert_eq!(src.rows(), self.page_rows, "page rows mismatch");
        let mut page = self.take_or_create();
        page.copy_from(src);
        self.locked().stats.cow_copies += 1;
        Arc::new(page)
    }

    /// Returns a handle to the arena. If it was the **last** handle
    /// (refcount 1, i.e. the page's refcount reaches zero once this
    /// handle is consumed), the page is zeroed and pushed onto the free
    /// list for reuse; otherwise the handle is simply dropped and the
    /// remaining holders keep the page alive.
    pub fn recycle(&self, page: PageHandle) {
        if let Ok(mut page) = Arc::try_unwrap(page) {
            if page.dim() == self.dim && page.rows() == self.page_rows {
                page.zero();
                let mut inner = self.locked();
                inner.stats.recycled += 1;
                inner.free.push(page);
            }
        }
    }

    /// Number of pages currently waiting on the free list.
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.locked().free.len()
    }

    /// A snapshot of the allocation / reuse counters.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        self.locked().stats
    }
}

/// Which KV plane a [`PagedRows`] view reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    Keys,
    Values,
}

/// A non-allocating, row-addressable view over the `f32` key or value
/// plane of a page table — the paged twin of
/// [`RowView`](crate::kernels::RowView). Logical row `r` resolves to row
/// `r % page_rows` of page `r / page_rows`; rows never span pages, so
/// each row is still one contiguous slice and the flat kernels walk the
/// non-contiguous pages through the [`Rows`](crate::kernels::Rows) trait
/// without copying.
#[derive(Debug, Clone, Copy)]
pub struct PagedRows<'a> {
    pages: &'a [PageHandle],
    plane: Plane,
    dim: usize,
    page_rows: usize,
}

impl<'a> PagedRows<'a> {
    fn new(pages: &'a [PageHandle], plane: Plane, dim: usize, page_rows: usize) -> Self {
        assert!(dim > 0, "PagedRows requires dim > 0");
        assert!(page_rows > 0, "PagedRows requires page_rows > 0");
        Self {
            pages,
            plane,
            dim,
            page_rows,
        }
    }

    /// A view of the key plane.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `page_rows == 0`.
    #[must_use]
    pub fn keys(pages: &'a [PageHandle], dim: usize, page_rows: usize) -> Self {
        Self::new(pages, Plane::Keys, dim, page_rows)
    }

    /// A view of the value plane.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `page_rows == 0`.
    #[must_use]
    pub fn values(pages: &'a [PageHandle], dim: usize, page_rows: usize) -> Self {
        Self::new(pages, Plane::Values, dim, page_rows)
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow logical row `r` (one contiguous slice inside its page).
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the page table.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f32] {
        let page: &'a Page = &self.pages[r / self.page_rows];
        let row = r % self.page_rows;
        match self.plane {
            Plane::Keys => &page.keys[row * self.dim..(row + 1) * self.dim],
            Plane::Values => &page.values[row * self.dim..(row + 1) * self.dim],
        }
    }
}

impl crate::kernels::Rows for PagedRows<'_> {
    fn dim(&self) -> usize {
        PagedRows::dim(self)
    }

    fn row(&self, r: usize) -> &[f32] {
        PagedRows::row(self, r)
    }
}

/// The quantized twin of [`PagedRows`]: row-addressable `i8` key levels
/// plus one scale per row, read from a page table. Implements
/// [`QuantRows`](crate::kernels::QuantRows) so the integer kernels walk
/// pages exactly like the flat [`QuantRowView`](crate::kernels::QuantRowView).
#[derive(Debug, Clone, Copy)]
pub struct PagedQuantRows<'a> {
    pages: &'a [PageHandle],
    dim: usize,
    page_rows: usize,
}

impl<'a> PagedQuantRows<'a> {
    /// A view of the quantized key plane.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `page_rows == 0`.
    #[must_use]
    pub fn new(pages: &'a [PageHandle], dim: usize, page_rows: usize) -> Self {
        assert!(dim > 0, "PagedQuantRows requires dim > 0");
        assert!(page_rows > 0, "PagedQuantRows requires page_rows > 0");
        Self {
            pages,
            dim,
            page_rows,
        }
    }

    /// Logical row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the integer levels of logical row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the page table.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [i8] {
        let page: &'a Page = &self.pages[r / self.page_rows];
        let row = r % self.page_rows;
        &page.qkeys[row * self.dim..(row + 1) * self.dim]
    }

    /// The dequantization scale of logical row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` addresses past the page table.
    #[inline]
    #[must_use]
    pub fn scale(&self, r: usize) -> f32 {
        self.pages[r / self.page_rows].qscales[r % self.page_rows]
    }
}

impl crate::kernels::QuantRows for PagedQuantRows<'_> {
    fn dim(&self) -> usize {
        PagedQuantRows::dim(self)
    }

    fn row(&self, r: usize) -> &[i8] {
        PagedQuantRows::row(self, r)
    }

    fn scale(&self, r: usize) -> f32 {
        PagedQuantRows::scale(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_recycle_reuse_cycle() {
        let arena = PageArena::new(4, 2);
        let page = arena.alloc();
        assert_eq!(arena.stats().allocated, 1);
        assert_eq!(arena.free_pages(), 0);
        // Last handle returned: the page's refcount reaches zero and it
        // goes back to the free list.
        arena.recycle(page);
        assert_eq!(arena.free_pages(), 1);
        assert_eq!(arena.stats().recycled, 1);
        // Next allocation reuses it (no fresh heap page).
        let again = arena.alloc();
        assert_eq!(arena.free_pages(), 0);
        assert_eq!(arena.stats().reused, 1);
        assert_eq!(arena.stats().allocated, 1);
        assert!(again.keys.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn recycle_of_shared_page_is_a_noop() {
        let arena = PageArena::new(4, 2);
        let page = arena.alloc();
        let shared = Arc::clone(&page);
        arena.recycle(page);
        // `shared` still holds the page: nothing was reclaimed.
        assert_eq!(arena.free_pages(), 0);
        assert_eq!(arena.stats().recycled, 0);
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn cow_copy_is_counted_and_content_equal() {
        let arena = PageArena::new(2, 2);
        let page = arena.alloc();
        let copy = arena.cow_copy(&page);
        assert_eq!(arena.stats().cow_copies, 1);
        assert_eq!(copy.keys, page.keys);
        assert!(!Arc::ptr_eq(&page, &copy));
    }

    #[test]
    fn recycled_pages_come_back_zeroed() {
        let arena = PageArena::new(2, 1);
        let mut page = arena.alloc();
        Arc::get_mut(&mut page).unwrap().keys[0] = 9.0;
        arena.recycle(page);
        let fresh = arena.alloc();
        assert_eq!(fresh.keys, vec![0.0, 0.0]);
    }

    #[test]
    fn paged_views_resolve_rows_across_pages() {
        let arena = PageArena::new(2, 2);
        let mut a = arena.alloc();
        let mut b = arena.alloc();
        {
            let a = Arc::get_mut(&mut a).unwrap();
            a.keys.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            a.values.copy_from_slice(&[10.0, 20.0, 30.0, 40.0]);
            a.qkeys.copy_from_slice(&[1, 2, 3, 4]);
            a.qscales.copy_from_slice(&[0.5, 0.25]);
        }
        {
            let b = Arc::get_mut(&mut b).unwrap();
            b.keys.copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        }
        let pages = [a, b];
        let keys = PagedRows::keys(&pages, 2, 2);
        assert_eq!(keys.row(0), &[1.0, 2.0]);
        assert_eq!(keys.row(1), &[3.0, 4.0]);
        assert_eq!(keys.row(2), &[5.0, 6.0]);
        assert_eq!(keys.row(3), &[7.0, 8.0]);
        let values = PagedRows::values(&pages, 2, 2);
        assert_eq!(values.row(1), &[30.0, 40.0]);
        let quant = PagedQuantRows::new(&pages, 2, 2);
        assert_eq!(quant.row(1), &[3, 4]);
        assert_eq!(quant.scale(1), 0.25);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn zero_dim_arena_rejected() {
        let _ = PageArena::new(0, 4);
    }
}
