//! A deterministic tiny transformer used to produce realistically
//! structured attention for policy evaluation.
//!
//! This is *not* a trained language model: its weights are seeded random.
//! What matters for KV-cache pruning experiments is the *shape* of the
//! attention distributions it produces — softmax concentration, causal
//! masking, head diversity — which random projections already exhibit, and
//! which the synthetic [`crate::workloads`] then augment with controlled
//! sink/locality/heavy-hitter structure.

use serde::{Deserialize, Serialize};

use crate::matrix::{layer_norm_in_place, Matrix};
use crate::mha::{AttentionConfig, MultiHeadAttention};
use crate::AttentionError;

/// Shape of the tiny transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size for the embedding table.
    pub vocab: usize,
    /// Model dimension.
    pub d_model: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Number of attention layers.
    pub n_layers: usize,
    /// Include a ReLU MLP block (expansion 2×) after each attention block.
    pub use_mlp: bool,
    /// Apply layer normalization after each residual block.
    pub use_layer_norm: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            vocab: 256,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            use_mlp: true,
            use_layer_norm: true,
        }
    }
}

/// A deterministic, seeded decoder-only transformer (attention + optional
/// MLP/LayerNorm blocks; no trained parameters).
///
/// # Examples
///
/// ```
/// use unicaim_attention::{TinyTransformer, TransformerConfig};
///
/// # fn main() -> Result<(), unicaim_attention::AttentionError> {
/// let model = TinyTransformer::new(TransformerConfig::default(), 42)?;
/// let tokens: Vec<usize> = (0..12).collect();
/// let probs = model.attention_matrix(&tokens, 0)?;
/// let row: f32 = probs.row(11).iter().sum();
/// assert!((row - 1.0).abs() < 1e-4); // causal softmax rows are stochastic
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyTransformer {
    config: TransformerConfig,
    embedding: Matrix,
    positional: Matrix,
    layers: Vec<MultiHeadAttention>,
    /// Per-layer MLP weights `(W_up: d×2d, W_down: 2d×d)` when enabled.
    mlps: Vec<(Matrix, Matrix)>,
}

impl TinyTransformer {
    /// Maximum sequence length supported by the positional table.
    pub const MAX_SEQ: usize = 4096;

    /// Builds the model with seeded random parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] for an invalid head/model
    /// combination.
    pub fn new(config: TransformerConfig, seed: u64) -> Result<Self, AttentionError> {
        let attn_cfg = AttentionConfig {
            d_model: config.d_model,
            n_heads: config.n_heads,
        };
        attn_cfg.validate()?;
        let scale = 1.0 / (config.d_model as f32).sqrt();
        let embedding = Matrix::random_normal(config.vocab, config.d_model, 1.0, seed ^ 0xE3B0);
        let mut positional = Matrix::zeros(Self::MAX_SEQ, config.d_model);
        for t in 0..Self::MAX_SEQ {
            for i in 0..config.d_model {
                let rate = 10_000f32.powf(-(2.0 * (i / 2) as f32) / config.d_model as f32);
                let angle = t as f32 * rate;
                let v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
                positional.set(t, i, v * scale);
            }
        }
        let layers = (0..config.n_layers)
            .map(|l| MultiHeadAttention::new(attn_cfg, seed.wrapping_add(101 * l as u64 + 1)))
            .collect::<Result<Vec<_>, _>>()?;
        let mlps = if config.use_mlp {
            (0..config.n_layers)
                .map(|l| {
                    let d = config.d_model;
                    let s = seed.wrapping_add(7919 * l as u64 + 13);
                    (
                        Matrix::random_normal(d, 2 * d, scale, s),
                        Matrix::random_normal(2 * d, d, scale, s ^ 0xFFFF),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            config,
            embedding,
            positional,
            layers,
            mlps,
        })
    }

    /// Applies one post-attention block (MLP with ReLU + residual, then
    /// optional layer norm) to the hidden states in place.
    fn post_block(&self, layer: usize, hidden: &mut Matrix) -> Result<(), AttentionError> {
        if self.config.use_mlp {
            let (w_up, w_down) = &self.mlps[layer];
            let mut up = hidden.matmul(w_up)?;
            for r in 0..up.rows() {
                for v in up.row_mut(r) {
                    *v = v.max(0.0); // ReLU
                }
            }
            let down = up.matmul(w_down)?;
            for r in 0..hidden.rows() {
                let row = hidden.row_mut(r);
                for (h, &d) in row.iter_mut().zip(down.row(r)) {
                    *h += d;
                }
            }
        }
        if self.config.use_layer_norm {
            for r in 0..hidden.rows() {
                layer_norm_in_place(hidden.row_mut(r), 1e-6);
            }
        }
        Ok(())
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> TransformerConfig {
        self.config
    }

    /// Embeds a token sequence (token id modulo vocab) with positional
    /// encoding added.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::IndexOutOfRange`] when the sequence exceeds
    /// [`TinyTransformer::MAX_SEQ`].
    pub fn embed(&self, tokens: &[usize]) -> Result<Matrix, AttentionError> {
        if tokens.len() > Self::MAX_SEQ {
            return Err(AttentionError::IndexOutOfRange {
                index: tokens.len(),
                len: Self::MAX_SEQ,
            });
        }
        let mut hidden = Matrix::zeros(tokens.len(), self.config.d_model);
        for (t, &tok) in tokens.iter().enumerate() {
            let e = self.embedding.row(tok % self.config.vocab);
            let p = self.positional.row(t);
            let row = hidden.row_mut(t);
            for ((h, &ev), &pv) in row.iter_mut().zip(e).zip(p) {
                *h = ev + pv;
            }
        }
        Ok(hidden)
    }

    /// Runs all layers with residual connections, returning the final hidden
    /// states (`seq × d_model`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from embedding/attention.
    pub fn forward(&self, tokens: &[usize]) -> Result<Matrix, AttentionError> {
        let mut hidden = self.embed(tokens)?;
        for (l, layer) in self.layers.iter().enumerate() {
            let attn = layer.forward(&hidden)?;
            for r in 0..hidden.rows() {
                let row = hidden.row_mut(r);
                for (h, &a) in row.iter_mut().zip(attn.row(r)) {
                    *h += a;
                }
            }
            self.post_block(l, &mut hidden)?;
        }
        Ok(hidden)
    }

    /// Queries and keys of one head of the *last* layer for the given token
    /// sequence — the realistic Q/K streams used to drive pruning policies.
    ///
    /// Returns `(queries, keys)`, each `seq × d_head`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors; rejects a bad head index.
    pub fn last_layer_qk(
        &self,
        tokens: &[usize],
        head: usize,
    ) -> Result<(Matrix, Matrix), AttentionError> {
        self.layer_qk(tokens, self.layers.len().saturating_sub(1), head)
    }

    /// Queries and keys of one head at an arbitrary `layer` depth: runs the
    /// blocks below `layer` with residual connections, then projects the
    /// hidden states through that layer's Q/K weights — the per-depth Q/K
    /// streams a multi-layer decode stack prunes against.
    ///
    /// `layer_qk(tokens, n_layers - 1, head)` is exactly
    /// [`TinyTransformer::last_layer_qk`].
    ///
    /// Returns `(queries, keys)`, each `seq × d_head`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors; rejects a bad layer or head index with
    /// [`AttentionError::IndexOutOfRange`].
    pub fn layer_qk(
        &self,
        tokens: &[usize],
        layer: usize,
        head: usize,
    ) -> Result<(Matrix, Matrix), AttentionError> {
        if layer >= self.layers.len() {
            return Err(AttentionError::IndexOutOfRange {
                index: layer,
                len: self.layers.len(),
            });
        }
        let n_heads = self.config.n_heads;
        if head >= n_heads {
            return Err(AttentionError::IndexOutOfRange {
                index: head,
                len: n_heads,
            });
        }
        let mut hidden = self.embed(tokens)?;
        for (l, below) in self.layers[..layer].iter().enumerate() {
            let attn = below.forward(&hidden)?;
            for r in 0..hidden.rows() {
                let row = hidden.row_mut(r);
                for (h, &a) in row.iter_mut().zip(attn.row(r)) {
                    *h += a;
                }
            }
            self.post_block(l, &mut hidden)?;
        }
        let target = &self.layers[layer];
        let q = target.project_q(&hidden)?;
        let k = target.project_k(&hidden)?;
        let dh = self.config.d_model / n_heads;
        let lo = head * dh;
        let mut qs = Matrix::zeros(tokens.len(), dh);
        let mut ks = Matrix::zeros(tokens.len(), dh);
        for t in 0..tokens.len() {
            qs.row_mut(t).copy_from_slice(&q.row(t)[lo..lo + dh]);
            ks.row_mut(t).copy_from_slice(&k.row(t)[lo..lo + dh]);
        }
        Ok((qs, ks))
    }

    /// The last layer's causal attention-probability matrix for `head`
    /// (convenience for accumulated-score experiments).
    ///
    /// # Errors
    ///
    /// Propagates shape errors; rejects a bad head index.
    pub fn attention_matrix(
        &self,
        tokens: &[usize],
        head: usize,
    ) -> Result<Matrix, AttentionError> {
        let mut hidden = self.embed(tokens)?;
        for (l, layer) in self.layers[..self.layers.len().saturating_sub(1)]
            .iter()
            .enumerate()
        {
            let attn = layer.forward(&hidden)?;
            for r in 0..hidden.rows() {
                let row = hidden.row_mut(r);
                for (h, &a) in row.iter_mut().zip(attn.row(r)) {
                    *h += a;
                }
            }
            self.post_block(l, &mut hidden)?;
        }
        match self.layers.last() {
            Some(layer) => layer.attention_matrix(&hidden, head),
            None => Err(AttentionError::ShapeMismatch {
                context: "transformer has no layers".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TinyTransformer {
        TinyTransformer::new(TransformerConfig::default(), 7).unwrap()
    }

    #[test]
    fn forward_is_deterministic() {
        let m = model();
        let tokens: Vec<usize> = (0..20).map(|i| (i * 37) % 256).collect();
        let a = m.forward(&tokens).unwrap();
        let b = m.forward(&tokens).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = TinyTransformer::new(TransformerConfig::default(), 1).unwrap();
        let b = TinyTransformer::new(TransformerConfig::default(), 2).unwrap();
        let tokens = vec![1, 2, 3, 4];
        assert_ne!(a.forward(&tokens).unwrap(), b.forward(&tokens).unwrap());
    }

    #[test]
    fn qk_shapes_match_head_dim() {
        let m = model();
        let tokens = vec![5; 12];
        let (q, k) = m.last_layer_qk(&tokens, 1).unwrap();
        assert_eq!(q.rows(), 12);
        assert_eq!(q.cols(), 16); // 64 / 4 heads
        assert_eq!(k.rows(), 12);
        assert_eq!(k.cols(), 16);
    }

    #[test]
    fn attention_matrix_rows_sum_to_one() {
        let m = model();
        let tokens: Vec<usize> = (0..10).collect();
        let probs = m.attention_matrix(&tokens, 0).unwrap();
        for t in 0..10 {
            let s: f32 = probs.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {t} sums to {s}");
        }
    }

    #[test]
    fn bad_head_rejected() {
        let m = model();
        assert!(m.last_layer_qk(&[1, 2, 3], 4).is_err());
        assert!(m.layer_qk(&[1, 2, 3], 0, 4).is_err());
    }

    #[test]
    fn layer_qk_at_last_layer_matches_last_layer_qk() {
        let m = model();
        let tokens: Vec<usize> = (0..24).map(|i| (i * 17) % 256).collect();
        let last = m.config().n_layers - 1;
        assert_eq!(
            m.layer_qk(&tokens, last, 1).unwrap(),
            m.last_layer_qk(&tokens, 1).unwrap()
        );
    }

    #[test]
    fn layer_qk_differs_across_depths() {
        let m = model();
        let tokens: Vec<usize> = (0..16).map(|i| (i * 29) % 256).collect();
        let (q0, k0) = m.layer_qk(&tokens, 0, 0).unwrap();
        let (q1, k1) = m.layer_qk(&tokens, 1, 0).unwrap();
        assert_eq!(q0.rows(), 16);
        assert_ne!(q0, q1);
        assert_ne!(k0, k1);
    }

    #[test]
    fn bad_layer_rejected() {
        let m = model();
        assert_eq!(
            m.layer_qk(&[1, 2, 3], 2, 0),
            Err(AttentionError::IndexOutOfRange { index: 2, len: 2 })
        );
    }

    #[test]
    fn too_long_sequence_rejected() {
        let m = model();
        let tokens = vec![0usize; TinyTransformer::MAX_SEQ + 1];
        assert!(m.embed(&tokens).is_err());
    }

    #[test]
    fn mlp_and_layernorm_change_the_computation() {
        let tokens: Vec<usize> = (0..16).map(|i| (i * 11) % 256).collect();
        let base = TinyTransformer::new(TransformerConfig::default(), 7).unwrap();
        let plain = TinyTransformer::new(
            TransformerConfig {
                use_mlp: false,
                use_layer_norm: false,
                ..TransformerConfig::default()
            },
            7,
        )
        .unwrap();
        assert_ne!(
            base.forward(&tokens).unwrap(),
            plain.forward(&tokens).unwrap()
        );
    }

    #[test]
    fn layernorm_bounds_hidden_norms() {
        let tokens: Vec<usize> = (0..32).map(|i| (i * 13) % 256).collect();
        let m = TinyTransformer::new(TransformerConfig::default(), 9).unwrap();
        let h = m.forward(&tokens).unwrap();
        for r in 0..h.rows() {
            let norm = Matrix::norm(h.row(r));
            let expect = (m.config().d_model as f32).sqrt();
            assert!(
                (norm - expect).abs() / expect < 0.05,
                "layer-normed row norm {norm} should be ~sqrt(d)={expect}"
            );
        }
    }

    #[test]
    fn positional_encoding_differentiates_positions() {
        let m = model();
        // Same token at two positions must embed differently.
        let h = m.embed(&[42, 42]).unwrap();
        let r0 = h.row(0).to_vec();
        let r1 = h.row(1).to_vec();
        assert_ne!(r0, r1);
    }
}
