//! Analytic Llama-2-7B memory/latency model (paper Fig. 1b).
//!
//! Fig. 1b motivates the work: as the sequence grows, the KV cache
//! overtakes the parameter size and attention becomes the latency
//! bottleneck. Both curves follow from the model shape and memory
//! bandwidth alone, so they are reproduced analytically here.

use serde::{Deserialize, Serialize};

/// Shape and deployment parameters of a decoder-only LLM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Transformer layers.
    pub n_layers: usize,
    /// Attention heads (per layer).
    pub n_heads: usize,
    /// Per-head dimension.
    pub d_head: usize,
    /// Total parameter count.
    pub n_params: u64,
    /// Bytes per stored element (2 for fp16).
    pub bytes_per_element: usize,
    /// Accelerator memory bandwidth, bytes/second (drives the memory-bound
    /// decode latency estimate).
    pub mem_bandwidth: f64,
}

impl LlmConfig {
    /// Llama-2-7B served in fp16 on an A100-class accelerator (≈1.5 TB/s).
    #[must_use]
    pub fn llama2_7b() -> Self {
        Self {
            n_layers: 32,
            n_heads: 32,
            d_head: 128,
            n_params: 6_738_000_000,
            bytes_per_element: 2,
            mem_bandwidth: 1.5e12,
        }
    }

    /// Hidden size `n_heads · d_head`.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.n_heads * self.d_head
    }

    /// Parameter (weight) bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.n_params * self.bytes_per_element as u64
    }

    /// KV-cache bytes for one sequence of the given length:
    /// `2 (K and V) · layers · hidden · seq · bytes`.
    #[must_use]
    pub fn kv_cache_bytes(&self, seq_len: usize) -> u64 {
        2 * self.n_layers as u64
            * self.hidden() as u64
            * seq_len as u64
            * self.bytes_per_element as u64
    }

    /// Sequence length at which the KV cache equals the parameter size.
    #[must_use]
    pub fn kv_crossover_seq(&self) -> usize {
        let per_token = self.kv_cache_bytes(1);
        (self.weight_bytes() / per_token) as usize
    }

    /// Memory-bound latency of one decode step's *attention* (reading the
    /// whole KV cache), seconds.
    #[must_use]
    pub fn attention_latency(&self, seq_len: usize) -> f64 {
        self.kv_cache_bytes(seq_len) as f64 / self.mem_bandwidth
    }

    /// Memory-bound latency of one decode step's *weight* reads, seconds —
    /// the sequence-independent floor attention is compared against.
    #[must_use]
    pub fn weight_latency(&self) -> f64 {
        self.weight_bytes() as f64 / self.mem_bandwidth
    }

    /// Fraction of a decode step spent on attention (KV reads) at the given
    /// sequence length.
    #[must_use]
    pub fn attention_fraction(&self, seq_len: usize) -> f64 {
        let a = self.attention_latency(seq_len);
        a / (a + self.weight_latency())
    }
}

/// One row of the Fig. 1b sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotivationPoint {
    /// Sequence length.
    pub seq_len: usize,
    /// KV-cache size, bytes.
    pub kv_bytes: u64,
    /// KV cache / weight size ratio.
    pub kv_over_weights: f64,
    /// Attention latency per decode step, seconds.
    pub attention_latency: f64,
    /// Fraction of decode latency spent in attention.
    pub attention_fraction: f64,
}

/// Sweeps sequence lengths, producing the Fig. 1b series.
#[must_use]
pub fn motivation_sweep(config: &LlmConfig, seq_lens: &[usize]) -> Vec<MotivationPoint> {
    seq_lens
        .iter()
        .map(|&seq_len| MotivationPoint {
            seq_len,
            kv_bytes: config.kv_cache_bytes(seq_len),
            kv_over_weights: config.kv_cache_bytes(seq_len) as f64 / config.weight_bytes() as f64,
            attention_latency: config.attention_latency(seq_len),
            attention_fraction: config.attention_fraction(seq_len),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_kv_is_half_megabyte_per_token() {
        let c = LlmConfig::llama2_7b();
        // 2 * 32 layers * 4096 hidden * 2 bytes = 512 KiB per token.
        assert_eq!(c.kv_cache_bytes(1), 524_288);
    }

    #[test]
    fn kv_cache_overtakes_weights_in_tens_of_k_tokens() {
        let c = LlmConfig::llama2_7b();
        let crossover = c.kv_crossover_seq();
        // 13.5 GB of weights / 0.5 MB per token ≈ 25.7k tokens.
        assert!(
            (20_000..32_000).contains(&crossover),
            "crossover {crossover} outside the expected range"
        );
    }

    #[test]
    fn attention_latency_grows_linearly() {
        let c = LlmConfig::llama2_7b();
        let l1 = c.attention_latency(4096);
        let l2 = c.attention_latency(8192);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn attention_fraction_approaches_one() {
        let c = LlmConfig::llama2_7b();
        assert!(c.attention_fraction(1024) < 0.1);
        assert!(c.attention_fraction(262_144) > 0.9);
    }

    #[test]
    fn sweep_produces_monotone_series() {
        let c = LlmConfig::llama2_7b();
        let pts = motivation_sweep(&c, &[1024, 4096, 16_384, 65_536]);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].kv_bytes > w[0].kv_bytes);
            assert!(w[1].attention_latency > w[0].attention_latency);
            assert!(w[1].attention_fraction > w[0].attention_fraction);
        }
    }
}
