//! Long-context retrieval workloads with ground-truth salient sets.
//!
//! The paper's application-level evaluation (Fig. 13) runs LongBench
//! HotpotQA / NarrativeQA through a 7B LLM and scores answer F1. This
//! module provides the synthetic equivalent: controlled decode workloads in
//! which *we know exactly which cached tokens an answer needs*, so retrieval
//! quality under KV-cache pruning is directly measurable. The generator
//! plants the attention structure real LLMs exhibit:
//!
//! * **attention sinks** — the first few tokens receive attention from every
//!   query (StreamingLLM's observation),
//! * **locality** — queries correlate with recent positions,
//! * **needles / heavy hitters** — a few content tokens carry the signal
//!   queries later look for (H2O's observation),
//! * **distinct value payloads** on salient tokens, so evicting one visibly
//!   corrupts the attention output.
//!
//! Three presets mirror the paper's tasks: [`needle_task`] (single
//! retrieval), [`multi_hop_task`] (HotpotQA-like: two facts, one answer step
//! needs both), and [`summary_task`] (NarrativeQA-like: diffuse salient
//! mass).

use std::collections::BTreeSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::kernels::{self, RowView};
use crate::matrix::Matrix;

/// A planted "needle" fact: one prefill token that later queries must
/// retrieve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeedleSpec {
    /// Prefill position of the needle token.
    pub position: usize,
    /// Prefill query positions that (weakly) attend to the needle — the
    /// "mentions" that give it accumulated-attention mass during prefill.
    pub prefill_mentions: Vec<usize>,
    /// Decode steps whose queries strongly seek this needle.
    pub answer_steps: Vec<usize>,
}

/// Parameters of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Task name (used in reports).
    pub name: String,
    /// Key/query dimension.
    pub dim: usize,
    /// Prefill (prompt) length in tokens.
    pub prefill_len: usize,
    /// Number of decode steps.
    pub decode_len: usize,
    /// Number of attention-sink tokens at the start of the sequence.
    pub n_sinks: usize,
    /// Query component along the sink direction.
    pub sink_strength: f32,
    /// Query/key component along the positional (locality) subspace.
    pub locality_strength: f32,
    /// Query component along a sought needle's direction at answer steps.
    pub needle_strength: f32,
    /// Standard deviation of the isotropic noise component.
    pub noise: f32,
    /// Softmax sharpness: queries are scaled to `sharpness · √dim` so that
    /// attention logits span the dynamic range real LLMs exhibit (a unit
    /// query over hundreds of keys would give a nearly uniform softmax).
    pub sharpness: f32,
    /// Planted needles.
    pub needles: Vec<NeedleSpec>,
    /// Positions of diffuse salient tokens (summary-style tasks); each
    /// decode step samples a small subset of these to attend to.
    pub diffuse_salient: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

/// A fully materialized decode workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// Task name.
    pub name: String,
    /// Key/query dimension.
    pub dim: usize,
    /// Prefill keys, one per prompt token.
    pub prefill_keys: Vec<Vec<f32>>,
    /// Prefill values.
    pub prefill_values: Vec<Vec<f32>>,
    /// Prefill queries (used for accumulated-attention static pruning).
    pub prefill_queries: Vec<Vec<f32>>,
    /// One query per decode step.
    pub decode_queries: Vec<Vec<f32>>,
    /// Key of the token generated at each decode step.
    pub decode_keys: Vec<Vec<f32>>,
    /// Value of the token generated at each decode step.
    pub decode_values: Vec<Vec<f32>>,
    /// Ground-truth salient prefill token ids per decode step (empty set =
    /// unscored step).
    pub salient_at: Vec<BTreeSet<usize>>,
    /// Steps at which retrieval is scored.
    pub answer_steps: Vec<usize>,
}

impl DecodeWorkload {
    /// Total number of tokens the full (unpruned) cache would hold at the
    /// end of decoding.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.prefill_keys.len() + self.decode_keys.len()
    }

    /// Exact full-cache attention output at every decode step (the
    /// reference the pruned policies are compared against).
    ///
    /// Implemented over flat key/value arenas with the fused
    /// [`kernels::attend_prefix`] kernel: step `s` attends over the first
    /// `prefill + s` rows (the prompt plus every previously generated
    /// token).
    #[must_use]
    pub fn full_attention_reference(&self) -> Vec<Vec<f32>> {
        let dim = self.dim;
        let total = self.total_tokens();
        let mut key_arena = Vec::with_capacity(total * dim);
        let mut value_arena = Vec::with_capacity(total * dim);
        for k in self.prefill_keys.iter().chain(&self.decode_keys) {
            key_arena.extend_from_slice(k);
        }
        for v in self.prefill_values.iter().chain(&self.decode_values) {
            value_arena.extend_from_slice(v);
        }
        let keys = RowView::contiguous(&key_arena, dim);
        let values = RowView::contiguous(&value_arena, dim);
        let scale = 1.0 / (dim as f32).sqrt();
        let prefill = self.prefill_keys.len();
        let mut weights = Vec::with_capacity(total);
        let mut outputs = Vec::with_capacity(self.decode_queries.len());
        for (step, q) in self.decode_queries.iter().enumerate() {
            let mut out = vec![0.0f32; dim];
            kernels::attend_prefix(
                q,
                keys,
                values,
                prefill + step,
                scale,
                &mut weights,
                &mut out,
            );
            outputs.push(out);
        }
        outputs
    }
}

fn unit(rng: &mut ChaCha8Rng, dim: usize) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..dim)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        let n = Matrix::norm(&v);
        if n > 1e-6 {
            return v.iter().map(|x| x / n).collect();
        }
    }
}

fn normalize(mut v: Vec<f32>) -> Vec<f32> {
    let n = Matrix::norm(&v);
    if n > 1e-6 {
        for x in &mut v {
            *x /= n;
        }
    }
    v
}

fn add_scaled(dst: &mut [f32], src: &[f32], s: f32) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d += s * x;
    }
}

/// Generates a [`DecodeWorkload`] from a [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if a needle position/mention exceeds the prefill length or an
/// answer step exceeds the decode length.
#[must_use]
pub fn generate(spec: &WorkloadSpec) -> DecodeWorkload {
    for n in &spec.needles {
        assert!(
            n.position < spec.prefill_len,
            "needle position out of range"
        );
        assert!(
            n.prefill_mentions.iter().all(|&m| m < spec.prefill_len),
            "needle mention out of range"
        );
        assert!(
            n.answer_steps.iter().all(|&s| s < spec.decode_len),
            "answer step out of range"
        );
    }
    assert!(
        spec.diffuse_salient.iter().all(|&p| p < spec.prefill_len),
        "diffuse salient position out of range"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let dim = spec.dim;

    let u_sink = unit(&mut rng, dim);
    // Two incommensurate rotation frequencies span the locality subspace.
    let (e1, e2) = (unit(&mut rng, dim), unit(&mut rng, dim));
    let (e3, e4) = (unit(&mut rng, dim), unit(&mut rng, dim));
    let w1 = 2.0 * std::f32::consts::PI / 48.0;
    let w2 = 2.0 * std::f32::consts::PI / 31.0;
    let pos_comp = |t: usize| -> Vec<f32> {
        let mut v = vec![0.0f32; dim];
        let tf = t as f32;
        add_scaled(&mut v, &e1, (w1 * tf).cos());
        add_scaled(&mut v, &e2, (w1 * tf).sin());
        add_scaled(&mut v, &e3, 0.6 * (w2 * tf).cos());
        add_scaled(&mut v, &e4, 0.6 * (w2 * tf).sin());
        v
    };

    let needle_dirs: Vec<Vec<f32>> = spec.needles.iter().map(|_| unit(&mut rng, dim)).collect();
    let needle_vals: Vec<Vec<f32>> = spec.needles.iter().map(|_| unit(&mut rng, dim)).collect();
    let diffuse_dirs: Vec<Vec<f32>> = spec
        .diffuse_salient
        .iter()
        .map(|_| unit(&mut rng, dim))
        .collect();
    let diffuse_vals: Vec<Vec<f32>> = spec
        .diffuse_salient
        .iter()
        .map(|_| unit(&mut rng, dim))
        .collect();

    // --- Prefill keys & values -------------------------------------------
    let mut prefill_keys = Vec::with_capacity(spec.prefill_len);
    let mut prefill_values = Vec::with_capacity(spec.prefill_len);
    for t in 0..spec.prefill_len {
        let mut k: Vec<f32> = unit(&mut rng, dim).iter().map(|x| x * spec.noise).collect();
        add_scaled(&mut k, &pos_comp(t), spec.locality_strength);
        if t < spec.n_sinks {
            add_scaled(&mut k, &u_sink, 1.0);
        }
        if let Some(i) = spec.needles.iter().position(|n| n.position == t) {
            add_scaled(&mut k, &needle_dirs[i], 1.2);
        }
        if let Some(i) = spec.diffuse_salient.iter().position(|&p| p == t) {
            add_scaled(&mut k, &diffuse_dirs[i], 1.2);
        }
        prefill_keys.push(normalize(k));

        let mut v: Vec<f32> = unit(&mut rng, dim).iter().map(|x| x * 0.3).collect();
        if let Some(i) = spec.needles.iter().position(|n| n.position == t) {
            add_scaled(&mut v, &needle_vals[i], 3.0);
        }
        if let Some(i) = spec.diffuse_salient.iter().position(|&p| p == t) {
            add_scaled(&mut v, &diffuse_vals[i], 2.0);
        }
        prefill_values.push(v);
    }

    // --- Prefill queries --------------------------------------------------
    let mut prefill_queries = Vec::with_capacity(spec.prefill_len);
    for t in 0..spec.prefill_len {
        let mut q: Vec<f32> = unit(&mut rng, dim).iter().map(|x| x * spec.noise).collect();
        add_scaled(&mut q, &u_sink, spec.sink_strength);
        add_scaled(&mut q, &pos_comp(t), spec.locality_strength);
        for (i, n) in spec.needles.iter().enumerate() {
            if n.prefill_mentions.contains(&t) {
                add_scaled(&mut q, &needle_dirs[i], spec.needle_strength);
            }
        }
        // Diffuse salient tokens receive repeated follow-up attention during
        // prefill (a document keeps referring to its important facts) —
        // this is what gives accumulated-attention pruning its signal.
        for (i, &p) in spec.diffuse_salient.iter().enumerate() {
            if t > p && matches!(t - p, 1 | 5 | 11 | 23 | 47) {
                add_scaled(&mut q, &diffuse_dirs[i], spec.needle_strength * 0.9);
            }
        }
        let mut q = normalize(q);
        let gain = spec.sharpness * (dim as f32).sqrt();
        for x in &mut q {
            *x *= gain;
        }
        prefill_queries.push(q);
    }

    // --- Decode queries, keys, values, salient sets ------------------------
    let mut decode_queries = Vec::with_capacity(spec.decode_len);
    let mut decode_keys = Vec::with_capacity(spec.decode_len);
    let mut decode_values = Vec::with_capacity(spec.decode_len);
    let mut salient_at: Vec<BTreeSet<usize>> = Vec::with_capacity(spec.decode_len);
    for step in 0..spec.decode_len {
        let t = spec.prefill_len + step;
        let mut q: Vec<f32> = unit(&mut rng, dim).iter().map(|x| x * spec.noise).collect();
        add_scaled(&mut q, &u_sink, spec.sink_strength);
        add_scaled(&mut q, &pos_comp(t), spec.locality_strength);
        let mut salient = BTreeSet::new();
        for (i, n) in spec.needles.iter().enumerate() {
            if n.answer_steps.contains(&step) {
                add_scaled(&mut q, &needle_dirs[i], spec.needle_strength);
                salient.insert(n.position);
            }
        }
        if !spec.diffuse_salient.is_empty() && step % 4 == 0 {
            // Summary-style: each scored step draws on a few diffuse facts.
            let picks = 3.min(spec.diffuse_salient.len());
            let mut chosen = BTreeSet::new();
            while chosen.len() < picks {
                chosen.insert(rng.gen_range(0..spec.diffuse_salient.len()));
            }
            for i in chosen {
                add_scaled(&mut q, &diffuse_dirs[i], spec.needle_strength * 0.8);
                salient.insert(spec.diffuse_salient[i]);
            }
        }
        let mut q = normalize(q);
        let gain = spec.sharpness * (dim as f32).sqrt();
        for x in &mut q {
            *x *= gain;
        }
        decode_queries.push(q);
        salient_at.push(salient);

        let mut k: Vec<f32> = unit(&mut rng, dim).iter().map(|x| x * spec.noise).collect();
        add_scaled(&mut k, &pos_comp(t), spec.locality_strength);
        decode_keys.push(normalize(k));
        decode_values.push(unit(&mut rng, dim).iter().map(|x| x * 0.3).collect());
    }

    let answer_steps: Vec<usize> = (0..spec.decode_len)
        .filter(|&s| !salient_at[s].is_empty())
        .collect();

    DecodeWorkload {
        name: spec.name.clone(),
        dim,
        prefill_keys,
        prefill_values,
        prefill_queries,
        decode_queries,
        decode_keys,
        decode_values,
        salient_at,
        answer_steps,
    }
}

fn base_spec(name: &str, prefill_len: usize, decode_len: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        dim: 64,
        prefill_len,
        decode_len,
        n_sinks: 4,
        sink_strength: 0.5,
        locality_strength: 0.45,
        needle_strength: 1.4,
        noise: 0.5,
        sharpness: 12.0,
        needles: Vec::new(),
        diffuse_salient: Vec::new(),
        seed,
    }
}

/// Single-needle retrieval task: one mid-context fact, mentioned a few times
/// early in the prompt, sought at three decode steps.
#[must_use]
pub fn needle_task(prefill_len: usize, decode_len: usize, seed: u64) -> DecodeWorkload {
    let mut spec = base_spec("needle", prefill_len, decode_len, seed);
    let pos = prefill_len / 2;
    spec.needles.push(NeedleSpec {
        position: pos,
        prefill_mentions: vec![
            (pos + prefill_len / 8).min(prefill_len - 1),
            (pos + prefill_len / 4).min(prefill_len - 1),
            (pos + 3 * prefill_len / 8).min(prefill_len - 1),
        ],
        answer_steps: vec![decode_len / 4, decode_len / 2, 3 * decode_len / 4],
    });
    generate(&spec)
}

/// HotpotQA-like multi-hop task: two facts in different context regions;
/// the first answer step needs fact A, a later one needs *both*. Fact A's
/// mentions sit early in the prompt — outside a SnapKV-style observation
/// window — which is exactly the failure mode that separates
/// accumulated-score static pruning from observation-window pruning.
#[must_use]
pub fn multi_hop_task(prefill_len: usize, decode_len: usize, seed: u64) -> DecodeWorkload {
    let mut spec = base_spec("multi_hop", prefill_len, decode_len, seed);
    let pos_a = prefill_len / 4;
    let pos_b = 5 * prefill_len / 8;
    spec.needles.push(NeedleSpec {
        position: pos_a,
        prefill_mentions: vec![
            (pos_a + prefill_len / 16).min(prefill_len - 1),
            (pos_a + prefill_len / 8).min(prefill_len - 1),
        ],
        answer_steps: vec![decode_len / 4, 3 * decode_len / 4],
    });
    spec.needles.push(NeedleSpec {
        position: pos_b,
        prefill_mentions: vec![
            (pos_b + prefill_len / 16).min(prefill_len - 1),
            (pos_b + prefill_len / 8).min(prefill_len - 1),
        ],
        answer_steps: vec![decode_len / 2, 3 * decode_len / 4],
    });
    generate(&spec)
}

/// NarrativeQA-like summary task: two dozen diffuse salient tokens spread
/// over the prompt; every fourth decode step draws on a few of them.
#[must_use]
pub fn summary_task(prefill_len: usize, decode_len: usize, seed: u64) -> DecodeWorkload {
    let mut spec = base_spec("summary", prefill_len, decode_len, seed);
    let n_facts = 24.min(prefill_len / 8).max(1);
    spec.diffuse_salient = (0..n_facts)
        .map(|i| spec.n_sinks + i * (prefill_len - spec.n_sinks - 1) / n_facts)
        .collect();
    generate(&spec)
}

/// Distractor task: one true needle plus several decoy needles that receive
/// *more* prefill attention but are never sought during decode. Policies
/// that rank purely on accumulated prefill attention waste cache on the
/// decoys; dynamic per-step selection must still find the true needle.
#[must_use]
pub fn distractor_task(
    prefill_len: usize,
    decode_len: usize,
    n_distractors: usize,
    seed: u64,
) -> DecodeWorkload {
    let mut spec = base_spec("distractor", prefill_len, decode_len, seed);
    let pos = prefill_len / 2;
    spec.needles.push(NeedleSpec {
        position: pos,
        prefill_mentions: vec![(pos + 3).min(prefill_len - 1)],
        answer_steps: vec![decode_len / 3, 2 * decode_len / 3],
    });
    for i in 0..n_distractors {
        let dpos = (prefill_len / 8) * (i + 1) % prefill_len;
        if dpos == pos {
            continue;
        }
        spec.needles.push(NeedleSpec {
            position: dpos,
            // Heavily mentioned during prefill...
            prefill_mentions: (1..=4)
                .map(|j| (dpos + 5 * j).min(prefill_len - 1))
                .collect(),
            // ...but never sought during decode.
            answer_steps: Vec::new(),
        });
    }
    generate(&spec)
}

/// A serving-style batch of mixed tasks: cycles [`needle_task`],
/// [`multi_hop_task`], and [`summary_task`] across the batch at varying
/// context and decode lengths (1×, 1.5×, and 2× `base_prefill`; 1× and
/// 1.5× `decode_len`), so a batched driver sees heterogeneous sequences
/// that finish at different steps — the shape a real serving batch has.
/// Task kind cycles with the index while the length multipliers cycle at
/// different strides, so kind and length are decorrelated: large enough
/// batches contain every task kind at every context length.
///
/// Each workload gets a distinct seed derived from `seed` and its index,
/// and its name is suffixed with `#<index>` so per-sequence results stay
/// attributable.
///
/// # Panics
///
/// Panics if `n == 0` or the lengths are too small to plant the tasks'
/// needles (same constraints as the underlying task builders; in practice
/// `base_prefill ≥ 32` and `decode_len ≥ 4` are safe).
#[must_use]
pub fn mixed_batch(
    n: usize,
    base_prefill: usize,
    decode_len: usize,
    seed: u64,
) -> Vec<DecodeWorkload> {
    assert!(n > 0, "batch must contain at least one workload");
    (0..n)
        .map(|i| {
            let prefill = base_prefill + ((i / 3) % 3) * base_prefill / 2;
            let decode = decode_len + ((i / 2) % 2) * decode_len / 2;
            let s = seed.wrapping_add(1 + i as u64);
            let mut w = match i % 3 {
                0 => needle_task(prefill, decode, s),
                1 => multi_hop_task(prefill, decode, s),
                _ => summary_task(prefill, decode, s),
            };
            w.name = format!("{}#{i}", w.name);
            w
        })
        .collect()
}

/// A multi-turn batch against one shared system prompt: every workload
/// carries **bit-identical** prefill keys, values, and queries (same
/// seed, same prompt structure — the generator's prefix draws precede and
/// are independent of the decode draws), while each "turn" seeks the
/// planted fact at a different decode step, so decode-side queries and
/// ground-truth salient sets differ per session. This is the shape a
/// shared-prefix cache exists for: N sessions whose prompts fingerprint
/// identically but whose decodes diverge.
///
/// Names are suffixed `#<index>`; the prefix planes are what a
/// `PrefixRegistry` fingerprints, and the name is deliberately excluded.
///
/// # Panics
///
/// Panics if `n == 0`, or if `prefill_len`/`decode_len` are too small to
/// plant the needle (`prefill_len ≥ 8` and `decode_len ≥ 2` are safe).
#[must_use]
pub fn shared_prefix_batch(
    n: usize,
    prefill_len: usize,
    decode_len: usize,
    seed: u64,
) -> Vec<DecodeWorkload> {
    assert!(n > 0, "batch must contain at least one workload");
    let pos = prefill_len / 2;
    (0..n)
        .map(|i| {
            let mut spec = base_spec("shared_prefix", prefill_len, decode_len, seed);
            spec.needles.push(NeedleSpec {
                position: pos,
                prefill_mentions: vec![
                    (pos + prefill_len / 8).min(prefill_len - 1),
                    (pos + prefill_len / 4).min(prefill_len - 1),
                ],
                // The only per-turn variation: which decode step asks.
                answer_steps: vec![(2 + 7 * i) % decode_len],
            });
            let mut w = generate(&spec);
            w.name = format!("{}#{i}", w.name);
            w
        })
        .collect()
}

/// Parameters of the Poisson-ish serving arrival generator
/// ([`poisson_arrivals`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Mean inter-arrival gap in scheduler ticks (exponentially
    /// distributed, floored to whole ticks — several requests can share a
    /// tick at high load).
    pub mean_interarrival_ticks: f64,
    /// Number of tenants arrivals are spread across (uniformly at random).
    pub n_tenants: usize,
    /// Every `high_priority_every`-th request (1-based cadence) is marked
    /// high priority; `0` marks none.
    pub high_priority_every: usize,
    /// Base prompt length handed to [`mixed_batch`] (lengths then vary
    /// 1×/1.5×/2× across the batch).
    pub base_prefill: usize,
    /// Base decode length handed to [`mixed_batch`] (varies 1×/1.5×).
    pub decode_len: usize,
    /// RNG seed (arrival gaps and tenant draws; workload content uses the
    /// same seed through [`mixed_batch`]).
    pub seed: u64,
}

/// One request arriving at a serving queue: *when* it lands, *who* sent
/// it, *how urgent* it is, and the decode work it carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Scheduler tick at which the request arrives.
    pub at_tick: u64,
    /// Tenant the request belongs to.
    pub tenant: usize,
    /// Whether the request is in the high-priority class.
    pub high_priority: bool,
    /// The decode work itself.
    pub workload: DecodeWorkload,
}

/// Generates a Poisson-ish arrival trace: inter-arrival gaps are
/// exponentially distributed with the spec's mean (floored to whole
/// ticks), tenants are drawn uniformly, and the carried workloads are the
/// heterogeneous [`mixed_batch`] mix. Deterministic per seed, and ticks
/// are non-decreasing, so the trace can be replayed straight into a
/// serving queue.
///
/// # Panics
///
/// Panics if `n_requests == 0`, `n_tenants == 0`, or
/// `mean_interarrival_ticks` is not finite and positive.
#[must_use]
pub fn poisson_arrivals(spec: &ArrivalSpec) -> Vec<ArrivalEvent> {
    assert!(spec.n_requests > 0, "arrival trace must contain requests");
    assert!(spec.n_tenants > 0, "arrivals need at least one tenant");
    assert!(
        spec.mean_interarrival_ticks.is_finite() && spec.mean_interarrival_ticks > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xA221_7AE5);
    let workloads = mixed_batch(
        spec.n_requests,
        spec.base_prefill,
        spec.decode_len,
        spec.seed,
    );
    let mut tick = 0u64;
    workloads
        .into_iter()
        .enumerate()
        .map(|(i, workload)| {
            if i > 0 {
                // Inverse-CDF exponential draw, floored to whole ticks.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                tick += (-u.ln() * spec.mean_interarrival_ticks).floor() as u64;
            }
            ArrivalEvent {
                at_tick: tick,
                tenant: rng.gen_range(0..spec.n_tenants),
                high_priority: spec.high_priority_every != 0
                    && (i + 1) % spec.high_priority_every == 0,
                workload,
            }
        })
        .collect()
}

/// A workload whose queries and keys come from an actual (random-weight)
/// [`crate::TinyTransformer`] forward pass — realistic softmax statistics
/// with no planted structure (salient sets are empty; use it for cost and
/// throughput studies, not retrieval scoring).
///
/// # Panics
///
/// Panics if `prefill_len + decode_len` exceeds the transformer's maximum
/// sequence length.
#[must_use]
pub fn transformer_trace(prefill_len: usize, decode_len: usize, seed: u64) -> DecodeWorkload {
    use crate::transformer::{TinyTransformer, TransformerConfig};
    let total = prefill_len + decode_len;
    // lint:allow(no-panic-in-lib): TransformerConfig::default() is validated by a unit test to construct
    let model = TinyTransformer::new(TransformerConfig::default(), seed).expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7A57);
    let tokens: Vec<usize> = (0..total).map(|_| rng.gen_range(0..256)).collect();
    // lint:allow(no-panic-in-lib): the documented `# Panics` contract — total exceeding max_seq is a caller bug
    let (q, k) = model.last_layer_qk(&tokens, 0).expect("sequence fits");
    let dim = q.cols();
    let to_rows = |m: &Matrix, lo: usize, hi: usize| -> Vec<Vec<f32>> {
        (lo..hi).map(|t| m.row(t).to_vec()).collect()
    };
    let values: Vec<Vec<f32>> = (0..total)
        .map(|t| {
            let mut v = unit(&mut rng, dim);
            for x in &mut v {
                *x *= 0.5;
            }
            let _ = t;
            v
        })
        .collect();
    DecodeWorkload {
        name: "transformer_trace".to_owned(),
        dim,
        prefill_keys: to_rows(&k, 0, prefill_len),
        prefill_values: values[..prefill_len].to_vec(),
        prefill_queries: to_rows(&q, 0, prefill_len),
        decode_queries: to_rows(&q, prefill_len, total),
        decode_keys: to_rows(&k, prefill_len, total),
        decode_values: values[prefill_len..].to_vec(),
        salient_at: vec![BTreeSet::new(); decode_len],
        answer_steps: Vec::new(),
    }
}

/// Per-layer decode workloads for a K-layer attention stack with
/// depth-varying retrieval difficulty — the workload shape the DepthKV /
/// LAVa observation predicts: **front layers spread salient mass over many
/// diffuse facts** (they need a large share of the KV budget to keep them
/// all resident), while **deep layers concentrate on a couple of sharp
/// facts** (a small share suffices). A budget allocator that front-loads
/// the global budget should therefore beat a uniform split at equal total
/// memory.
///
/// All layers share `prefill_len`/`decode_len` (a stacked decode steps
/// every layer once per step) but draw from distinct seeds, and layer `l`
/// is named `layer_stack#L<l>`. The number of planted facts interpolates
/// from `max(2, prefill_len / 6)` at layer 0 down to 2 at the deepest
/// layer; a single-layer stack (`n_layers == 1`) gets the front-layer
/// workload.
///
/// # Panics
///
/// Panics if `n_layers == 0` or `prefill_len`/`decode_len` are too small
/// to plant the facts (`prefill_len ≥ 16` and `decode_len ≥ 4` are safe).
#[must_use]
pub fn layer_stack_tasks(
    n_layers: usize,
    prefill_len: usize,
    decode_len: usize,
    seed: u64,
) -> Vec<DecodeWorkload> {
    assert!(n_layers > 0, "a layer stack needs at least one layer");
    let max_facts = (prefill_len / 6).max(2);
    let min_facts = 2usize;
    (0..n_layers)
        .map(|l| {
            let depth = if n_layers > 1 {
                l as f64 / (n_layers - 1) as f64
            } else {
                0.0
            };
            let n_facts = ((max_facts as f64) * (1.0 - depth) + (min_facts as f64) * depth)
                .round()
                .max(min_facts as f64) as usize;
            let mut spec = base_spec(
                "layer_stack",
                prefill_len,
                decode_len,
                seed.wrapping_add(1 + 31 * l as u64),
            );
            spec.diffuse_salient = (0..n_facts)
                .map(|i| spec.n_sinks + i * (prefill_len - spec.n_sinks - 1) / n_facts)
                .collect();
            let mut w = generate(&spec);
            w.name = format!("{}#L{l}", w.name);
            w
        })
        .collect()
}

/// Per-layer decode workloads traced from an actual (random-weight)
/// [`crate::TinyTransformer`] with `n_layers` attention blocks: layer `l`'s
/// queries and keys come from [`crate::TinyTransformer::layer_qk`] at depth
/// `l`, so a stacked decode session sees genuinely depth-dependent softmax
/// statistics (no planted structure — salient sets are empty; use for cost
/// and entropy studies, not retrieval scoring).
///
/// # Panics
///
/// Panics if `n_layers == 0` or `prefill_len + decode_len` exceeds the
/// transformer's maximum sequence length.
#[must_use]
pub fn transformer_stack_trace(
    n_layers: usize,
    prefill_len: usize,
    decode_len: usize,
    seed: u64,
) -> Vec<DecodeWorkload> {
    use crate::transformer::{TinyTransformer, TransformerConfig};
    assert!(n_layers > 0, "a layer stack needs at least one layer");
    let total = prefill_len + decode_len;
    let model = TinyTransformer::new(
        TransformerConfig {
            n_layers,
            ..TransformerConfig::default()
        },
        seed,
    )
    // lint:allow(no-panic-in-lib): default dims with a caller-chosen layer count stay a valid config for n_layers >= 1
    .expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57AC);
    let tokens: Vec<usize> = (0..total).map(|_| rng.gen_range(0..256)).collect();
    (0..n_layers)
        .map(|l| {
            // lint:allow(no-panic-in-lib): the documented `# Panics` contract — total exceeding max_seq is a caller bug
            let (q, k) = model.layer_qk(&tokens, l, 0).expect("sequence fits");
            let dim = q.cols();
            let to_rows = |m: &Matrix, lo: usize, hi: usize| -> Vec<Vec<f32>> {
                (lo..hi).map(|t| m.row(t).to_vec()).collect()
            };
            let values: Vec<Vec<f32>> = (0..total)
                .map(|_| {
                    let mut v = unit(&mut rng, dim);
                    for x in &mut v {
                        *x *= 0.5;
                    }
                    v
                })
                .collect();
            DecodeWorkload {
                name: format!("transformer_stack#L{l}"),
                dim,
                prefill_keys: to_rows(&k, 0, prefill_len),
                prefill_values: values[..prefill_len].to_vec(),
                prefill_queries: to_rows(&q, 0, prefill_len),
                decode_queries: to_rows(&q, prefill_len, total),
                decode_keys: to_rows(&k, prefill_len, total),
                decode_values: values[prefill_len..].to_vec(),
                salient_at: vec![BTreeSet::new(); decode_len],
                answer_steps: Vec::new(),
            }
        })
        .collect()
}

/// A structure-free workload with Zipf-distributed key popularity, used for
/// hardware cost sweeps where only the score distribution matters.
#[must_use]
pub fn zipf_trace(prefill_len: usize, decode_len: usize, seed: u64) -> DecodeWorkload {
    let mut spec = base_spec("zipf", prefill_len, decode_len, seed);
    spec.needle_strength = 1.0;
    // Heavy tokens at Zipf-spaced ranks get repeated attention.
    let heavy: Vec<usize> = (1..=12)
        .map(|r| (prefill_len as f64 * (1.0 - 1.0 / f64::from(r + 1))) as usize % prefill_len)
        .collect();
    spec.diffuse_salient = heavy;
    generate(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cosine_similarity;
    use crate::mha::attention_scores;

    #[test]
    fn shared_prefix_batch_prefixes_are_bit_identical_and_turns_differ() {
        let batch = shared_prefix_batch(6, 64, 12, 9);
        assert_eq!(batch.len(), 6);
        let first = &batch[0];
        for w in &batch[1..] {
            // The whole prefix — exactly what a prefix registry
            // fingerprints — must match bit for bit.
            assert_eq!(w.prefill_keys, first.prefill_keys);
            assert_eq!(w.prefill_values, first.prefill_values);
            assert_eq!(w.prefill_queries, first.prefill_queries);
            assert_eq!(w.dim, first.dim);
        }
        // ...while the turns themselves diverge: some pair of sessions
        // asks at different steps, with different queries.
        assert!(
            batch
                .iter()
                .any(|w| w.salient_at != first.salient_at || w.answer_steps != first.answer_steps),
            "turns must vary across the batch"
        );
        assert!(batch
            .iter()
            .any(|w| w.decode_queries != first.decode_queries));
        for (i, w) in batch.iter().enumerate() {
            assert_eq!(w.name, format!("shared_prefix#{i}"));
            assert_eq!(w.decode_queries.len(), 12);
            assert!(w.salient_at.iter().any(|s| !s.is_empty()));
        }
    }

    #[test]
    fn layer_stack_tasks_front_loads_salient_mass() {
        let stack = layer_stack_tasks(4, 192, 16, 7);
        assert_eq!(stack.len(), 4);
        let fact_count = |w: &DecodeWorkload| {
            let mut facts = BTreeSet::new();
            for s in &w.salient_at {
                facts.extend(s.iter().copied());
            }
            facts.len()
        };
        for (l, w) in stack.iter().enumerate() {
            assert_eq!(w.name, format!("layer_stack#L{l}"));
            assert_eq!(w.prefill_keys.len(), 192);
            assert_eq!(w.decode_queries.len(), 16);
            assert!(!w.answer_steps.is_empty());
        }
        // The workload plants more facts up front than at depth (the picks
        // are random subsets, so compare the planted spec sizes loosely).
        assert!(
            fact_count(&stack[0]) > fact_count(&stack[3]),
            "front layer must carry more distinct salient facts ({} vs {})",
            fact_count(&stack[0]),
            fact_count(&stack[3])
        );
        // Deterministic per seed; single-layer stacks are valid.
        assert_eq!(stack, layer_stack_tasks(4, 192, 16, 7));
        assert_eq!(layer_stack_tasks(1, 64, 8, 3).len(), 1);
    }

    #[test]
    fn transformer_stack_trace_varies_by_depth() {
        let stack = transformer_stack_trace(3, 48, 6, 11);
        assert_eq!(stack.len(), 3);
        for (l, w) in stack.iter().enumerate() {
            assert_eq!(w.name, format!("transformer_stack#L{l}"));
            assert_eq!(w.prefill_keys.len(), 48);
            assert_eq!(w.decode_queries.len(), 6);
            assert!(w.answer_steps.is_empty());
        }
        assert_ne!(stack[0].prefill_keys, stack[2].prefill_keys);
        assert_eq!(stack, transformer_stack_trace(3, 48, 6, 11));
    }

    #[test]
    fn needle_task_shapes_are_consistent() {
        let w = needle_task(256, 32, 1);
        assert_eq!(w.prefill_keys.len(), 256);
        assert_eq!(w.prefill_queries.len(), 256);
        assert_eq!(w.decode_queries.len(), 32);
        assert_eq!(w.salient_at.len(), 32);
        assert_eq!(w.total_tokens(), 288);
        assert!(!w.answer_steps.is_empty());
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let a = needle_task(128, 16, 9);
        let b = needle_task(128, 16, 9);
        let c = needle_task(128, 16, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn answer_queries_rank_needle_highly() {
        let w = needle_task(256, 32, 2);
        let needle_pos = 128;
        for &step in &w.answer_steps {
            let q = &w.decode_queries[step];
            let keys: Vec<&[f32]> = w.prefill_keys.iter().map(Vec::as_slice).collect();
            let scores = attention_scores(q, &keys);
            let rank = scores.iter().filter(|&&s| s > scores[needle_pos]).count();
            assert!(
                rank < 8,
                "needle must rank near the top at answer step {step}, rank {rank}"
            );
        }
    }

    #[test]
    fn non_answer_queries_do_not_seek_needle() {
        let w = needle_task(256, 32, 3);
        let needle_pos = 128;
        let unscored: Vec<usize> = (0..32)
            .filter(|s| !w.answer_steps.contains(s))
            .take(4)
            .collect();
        for step in unscored {
            let q = &w.decode_queries[step];
            let keys: Vec<&[f32]> = w.prefill_keys.iter().map(Vec::as_slice).collect();
            let scores = attention_scores(q, &keys);
            let rank = scores.iter().filter(|&&s| s > scores[needle_pos]).count();
            assert!(rank > 3, "needle should not dominate unscored step {step}");
        }
    }

    #[test]
    fn sink_tokens_attract_every_query() {
        let w = needle_task(256, 32, 4);
        let keys: Vec<&[f32]> = w.prefill_keys.iter().map(Vec::as_slice).collect();
        let mut sink_better = 0usize;
        let mut total = 0usize;
        for q in w.decode_queries.iter() {
            let scores = attention_scores(q, &keys);
            let sink_mean: f32 = scores[..4].iter().sum::<f32>() / 4.0;
            let mid_mean: f32 = scores[100..140].iter().sum::<f32>() / 40.0;
            total += 1;
            if sink_mean > mid_mean {
                sink_better += 1;
            }
        }
        assert!(
            sink_better * 10 >= total * 9,
            "sinks must outscore mid-context for ≥90% of queries ({sink_better}/{total})"
        );
    }

    #[test]
    fn multi_hop_final_answer_needs_both_needles() {
        let w = multi_hop_task(512, 64, 5);
        let last_answer = *w.answer_steps.last().unwrap();
        assert_eq!(
            w.salient_at[last_answer].len(),
            2,
            "multi-hop step must need two facts"
        );
    }

    #[test]
    fn summary_task_has_diffuse_salience() {
        let w = summary_task(512, 64, 6);
        assert!(w.answer_steps.len() >= 8);
        let all: BTreeSet<usize> = w
            .salient_at
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        assert!(
            all.len() >= 10,
            "salient mass must be diffuse, got {}",
            all.len()
        );
    }

    #[test]
    fn needle_value_dominates_reference_output_at_answer_steps() {
        let w = needle_task(256, 32, 7);
        let reference = w.full_attention_reference();
        let needle_value = &w.prefill_values[128];
        let step = w.answer_steps[0];
        let sim = cosine_similarity(&reference[step], needle_value);
        assert!(
            sim > 0.5,
            "reference output must carry the needle value, sim {sim}"
        );
    }

    #[test]
    fn reference_outputs_have_decode_length() {
        let w = summary_task(128, 24, 8);
        assert_eq!(w.full_attention_reference().len(), 24);
    }

    #[test]
    fn mixed_batch_varies_tasks_and_lengths() {
        let batch = mixed_batch(9, 64, 8, 42);
        assert_eq!(batch.len(), 9);
        // Task kinds cycle needle → multi_hop → summary.
        assert!(batch[0].name.starts_with("needle#0"));
        assert!(batch[1].name.starts_with("multi_hop#1"));
        assert!(batch[2].name.starts_with("summary#2"));
        assert!(batch[3].name.starts_with("needle#3"));
        // Context lengths cycle 1×/1.5×/2× at stride 3, decode lengths
        // 1×/1.5× at stride 2.
        assert_eq!(batch[0].prefill_keys.len(), 64);
        assert_eq!(batch[3].prefill_keys.len(), 96);
        assert_eq!(batch[6].prefill_keys.len(), 128);
        assert_eq!(batch[0].decode_queries.len(), 8);
        assert_eq!(batch[2].decode_queries.len(), 12);
        // Kind and length are decorrelated: the same kind appears at
        // different context lengths (needle at 1×, 1.5×, and 2×).
        assert!(batch[0].name.starts_with("needle"));
        assert!(batch[6].name.starts_with("needle"));
        assert_ne!(batch[0].prefill_keys.len(), batch[6].prefill_keys.len());
        // Distinct seeds: same-kind tasks still differ key for key.
        assert_ne!(batch[0].prefill_keys[0], batch[3].prefill_keys[0]);
        // Deterministic per seed.
        assert_eq!(batch, mixed_batch(9, 64, 8, 42));
        assert_ne!(batch, mixed_batch(9, 64, 8, 43));
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn mixed_batch_rejects_empty() {
        let _ = mixed_batch(0, 64, 8, 1);
    }

    #[test]
    fn zipf_trace_generates() {
        let w = zipf_trace(256, 16, 11);
        assert_eq!(w.prefill_keys.len(), 256);
        assert_eq!(w.decode_queries.len(), 16);
    }

    #[test]
    fn distractor_task_has_single_true_needle() {
        let w = distractor_task(256, 32, 4, 12);
        let all: BTreeSet<usize> = w
            .salient_at
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        assert_eq!(all.len(), 1, "only the true needle is ever salient");
        assert_eq!(all.iter().next().copied(), Some(128));
        assert_eq!(w.answer_steps.len(), 2);
    }

    fn sample_arrival_spec() -> ArrivalSpec {
        ArrivalSpec {
            n_requests: 40,
            mean_interarrival_ticks: 3.0,
            n_tenants: 3,
            high_priority_every: 5,
            base_prefill: 48,
            decode_len: 8,
            seed: 21,
        }
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_ordered() {
        let spec = sample_arrival_spec();
        let a = poisson_arrivals(&spec);
        assert_eq!(a.len(), 40);
        assert_eq!(a, poisson_arrivals(&spec));
        assert_eq!(a[0].at_tick, 0);
        for pair in a.windows(2) {
            assert!(pair[0].at_tick <= pair[1].at_tick, "ticks must not regress");
        }
        let mut other = spec;
        other.seed = 22;
        assert_ne!(a, poisson_arrivals(&other));
    }

    #[test]
    fn poisson_arrivals_respect_tenants_and_priority_cadence() {
        let a = poisson_arrivals(&sample_arrival_spec());
        assert!(a.iter().all(|e| e.tenant < 3));
        // Uniform tenant draw over 40 requests hits every tenant.
        let tenants: BTreeSet<usize> = a.iter().map(|e| e.tenant).collect();
        assert_eq!(tenants.len(), 3);
        for (i, e) in a.iter().enumerate() {
            assert_eq!(e.high_priority, (i + 1) % 5 == 0, "request {i}");
        }
        // The carried workloads are the heterogeneous serving mix.
        assert!(a[0].workload.name.starts_with("needle#0"));
        assert!(a[1].workload.name.starts_with("multi_hop#1"));
    }

    #[test]
    fn poisson_arrival_gaps_track_the_requested_mean() {
        let mut spec = sample_arrival_spec();
        spec.n_requests = 400;
        spec.base_prefill = 32;
        spec.decode_len = 4;
        let a = poisson_arrivals(&spec);
        let span = a.last().unwrap().at_tick - a[0].at_tick;
        let mean_gap = span as f64 / (a.len() - 1) as f64;
        // Flooring shaves up to one tick off the exponential mean of 3.
        assert!(
            (1.6..=3.6).contains(&mean_gap),
            "mean gap {mean_gap} strayed from the requested mean of 3"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_arrivals_reject_nonpositive_mean() {
        let mut spec = sample_arrival_spec();
        spec.mean_interarrival_ticks = 0.0;
        let _ = poisson_arrivals(&spec);
    }

    #[test]
    fn transformer_trace_produces_consistent_shapes() {
        let w = transformer_trace(64, 8, 13);
        assert_eq!(w.prefill_keys.len(), 64);
        assert_eq!(w.decode_queries.len(), 8);
        assert_eq!(w.dim, 16); // default tiny transformer: 64/4 heads
        assert!(w.answer_steps.is_empty());
        // Deterministic per seed.
        assert_eq!(w, transformer_trace(64, 8, 13));
        assert_ne!(w, transformer_trace(64, 8, 14));
    }

    #[test]
    fn transformer_trace_reference_is_finite() {
        let w = transformer_trace(48, 6, 15);
        for out in w.full_attention_reference() {
            assert!(out.iter().all(|x| x.is_finite()));
        }
    }
}
